package layout_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"hidestore/internal/chunker"
	"hidestore/internal/container"
	"hidestore/internal/core"
	"hidestore/internal/dedup"
	"hidestore/internal/index/ddfs"
	"hidestore/internal/layout"
	"hidestore/internal/recipe"
	"hidestore/internal/restorecache"
	"hidestore/internal/workload"
)

// layoutVersions generates a churned multi-version stream small enough
// to test quickly but large enough to spread across many containers at
// the test's 64 KB capacity.
func layoutVersions(t *testing.T, n int) [][]byte {
	t.Helper()
	g, err := workload.New(workload.Config{
		Name: "layout-test", Versions: n, Files: 8, BlocksPerFile: 20,
		BlockSize: 4096, ModifyRate: 0.10, InsertRate: 0.01,
		DeleteRate: 0.005, FileChurn: 0.03, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for g.HasNext() {
		r, err := g.NextVersion()
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

const testCapacity = 64 << 10

// TestAnalyzeMatchesRestoreExactlyCore pins the tentpole invariant on
// the HiDeStore engine: for every cache policy, the analyzer's
// simulated container-read count equals a real restore's
// Stats.ContainerReads exactly. The estimate replays the same resolved
// reference stream through the same policy implementations, so this is
// an identity, not a tolerance. Analysis runs first — it must not
// mutate the store (Restore's recipe flattening does), and old
// versions exercise the read-only forward-pointer resolution.
func TestAnalyzeMatchesRestoreExactlyCore(t *testing.T) {
	versions := layoutVersions(t, 4)
	ctx := context.Background()
	for _, policy := range layout.DefaultPolicies {
		rc, err := restorecache.New(policy)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.New(core.Config{
			Store:             container.NewMemStore(),
			Recipes:           recipe.NewMemStore(),
			ContainerCapacity: testCapacity,
			Chunker:           chunker.FastCDC,
			RestoreCache:      rc,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range versions {
			if _, err := e.Backup(ctx, bytes.NewReader(v)); err != nil {
				t.Fatal(err)
			}
		}
		// Analyze every version before any restore mutates recipes.
		reports := make(map[int]*layout.Report)
		for v := 1; v <= len(versions); v++ {
			rep, err := e.AnalyzeLayout(ctx, v, []string{policy})
			if err != nil {
				t.Fatalf("%s: analyze v%d: %v", policy, v, err)
			}
			reports[v] = rep
		}
		for v := 1; v <= len(versions); v++ {
			rep := reports[v]
			real, err := e.Restore(ctx, v, io.Discard)
			if err != nil {
				t.Fatalf("%s: restore v%d: %v", policy, v, err)
			}
			est := rep.Policies[0]
			if est.ContainerReads != real.Stats.ContainerReads {
				t.Errorf("%s v%d: simulated %d container reads, real restore %d",
					policy, v, est.ContainerReads, real.Stats.ContainerReads)
			}
			if est.SpeedFactor != real.Stats.SpeedFactor() {
				t.Errorf("%s v%d: simulated speed factor %.4f, real %.4f",
					policy, v, est.SpeedFactor, real.Stats.SpeedFactor())
			}
			if rep.LogicalBytes != real.Stats.BytesRestored {
				t.Errorf("%s v%d: analyzer logical bytes %d, restored %d",
					policy, v, rep.LogicalBytes, real.Stats.BytesRestored)
			}
			if est.ContainerReads < 2 {
				t.Fatalf("%s v%d: degenerate layout (%d reads) — capacity too large for the workload",
					policy, v, est.ContainerReads)
			}
		}
	}
}

// TestAnalyzeMatchesRestoreExactlyDedup pins the same identity on the
// baseline engine, whose recipes carry final container IDs directly.
func TestAnalyzeMatchesRestoreExactlyDedup(t *testing.T) {
	versions := layoutVersions(t, 3)
	ctx := context.Background()
	for _, policy := range layout.DefaultPolicies {
		rc, err := restorecache.New(policy)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := ddfs.New(ddfs.Options{CacheContainers: 4})
		if err != nil {
			t.Fatal(err)
		}
		e, err := dedup.New(dedup.Config{
			Index:             ix,
			Store:             container.NewMemStore(),
			Recipes:           recipe.NewMemStore(),
			ContainerCapacity: testCapacity,
			Chunker:           chunker.FastCDC,
			RestoreCache:      rc,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range versions {
			if _, err := e.Backup(ctx, bytes.NewReader(v)); err != nil {
				t.Fatal(err)
			}
		}
		for v := 1; v <= len(versions); v++ {
			rep, err := e.AnalyzeLayout(ctx, v, []string{policy})
			if err != nil {
				t.Fatalf("%s: analyze v%d: %v", policy, v, err)
			}
			real, err := e.Restore(ctx, v, io.Discard)
			if err != nil {
				t.Fatalf("%s: restore v%d: %v", policy, v, err)
			}
			if got, want := rep.Policies[0].ContainerReads, real.Stats.ContainerReads; got != want {
				t.Errorf("%s v%d: simulated %d container reads, real restore %d", policy, v, got, want)
			}
		}
	}
}

// TestAnalyzeReportShape checks the fragmentation metrics themselves:
// bounds, internal consistency, and the rendered output.
func TestAnalyzeReportShape(t *testing.T) {
	versions := layoutVersions(t, 3)
	ctx := context.Background()
	e, err := core.New(core.Config{
		Store:             container.NewMemStore(),
		Recipes:           recipe.NewMemStore(),
		ContainerCapacity: testCapacity,
		Chunker:           chunker.FastCDC,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range versions {
		if _, err := e.Backup(ctx, bytes.NewReader(v)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.AnalyzeLayout(ctx, len(versions), nil) // nil = all policies
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks == 0 || rep.LogicalBytes == 0 {
		t.Fatal("empty analysis of a non-empty version")
	}
	if rep.UniqueContainers < 2 {
		t.Fatalf("degenerate: %d unique containers", rep.UniqueContainers)
	}
	wantOptimal := int((rep.LogicalBytes + testCapacity - 1) / testCapacity)
	if rep.OptimalContainers != wantOptimal {
		t.Errorf("optimal containers %d, want %d", rep.OptimalContainers, wantOptimal)
	}
	if rep.CFL <= 0 {
		t.Errorf("CFL %.4f, want > 0", rep.CFL)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization %.4f outside (0, 1]", rep.Utilization)
	}
	if rep.ReferencedBytes == 0 || rep.ReferencedBytes > rep.ContainerBytes {
		t.Errorf("referenced bytes %d inconsistent with container bytes %d",
			rep.ReferencedBytes, rep.ContainerBytes)
	}
	if rep.ContainersPerMB <= 0 {
		t.Errorf("containers/MB %.4f, want > 0", rep.ContainersPerMB)
	}
	if len(rep.Policies) != len(layout.DefaultPolicies) {
		t.Fatalf("got %d policy estimates, want %d", len(rep.Policies), len(layout.DefaultPolicies))
	}
	// OPT is clairvoyant: no policy can read fewer containers.
	var opt uint64
	for _, p := range rep.Policies {
		if p.Policy == "opt" {
			opt = p.ContainerReads
		}
	}
	for _, p := range rep.Policies {
		if p.ContainerReads < opt {
			t.Errorf("%s reads %d beat the clairvoyant bound %d", p.Policy, p.ContainerReads, opt)
		}
	}
	out := rep.Render()
	for _, want := range []string{"CFL", "utilization", "alacc", "opt", "speed factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeRejectsUnresolvedEntries: the analyzer is strict about its
// precondition — engines resolve recipes before calling it.
func TestAnalyzeRejectsUnresolvedEntries(t *testing.T) {
	entries := []recipe.Entry{{Size: 10, CID: 0}}
	_, err := layout.Analyze(context.Background(), 1, entries,
		restorecache.StoreFetcher(container.NewMemStore()), 0, nil)
	if err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("want unresolved-entry error, got %v", err)
	}
}

// TestAnalyzeUnknownPolicy surfaces the restorecache factory error.
func TestAnalyzeUnknownPolicy(t *testing.T) {
	_, err := layout.Analyze(context.Background(), 1, nil,
		restorecache.StoreFetcher(container.NewMemStore()), 0, []string{"nope"})
	if err == nil {
		t.Fatal("unknown policy must fail")
	}
}
