// Package lru provides a cost-aware least-recently-used cache.
//
// Restore caches in deduplication systems are LRU caches keyed by container
// ID or fingerprint (§2.3): container-based caches charge one unit per
// container, chunk-based caches charge the chunk size in bytes. This cache
// supports both through a per-entry cost, evicting least-recently-used
// entries until the total cost fits the capacity.
package lru

import "fmt"

// Cache is a generic LRU cache with per-entry costs. The zero value is not
// usable; construct with New. Cache is not safe for concurrent use.
type Cache[K comparable, V any] struct {
	capacity int64
	used     int64
	entries  map[K]*node[K, V]
	// head is most-recently-used, tail least-recently-used.
	head, tail *node[K, V]
	onEvict    func(K, V)

	hits, misses, evictions uint64
}

type node[K comparable, V any] struct {
	key        K
	value      V
	cost       int64
	prev, next *node[K, V]
}

// New creates a cache that holds entries of total cost at most capacity.
func New[K comparable, V any](capacity int64) (*Cache[K, V], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("lru: capacity must be positive, got %d", capacity)
	}
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*node[K, V]),
	}, nil
}

// SetOnEvict registers a callback invoked for every entry removed by
// capacity pressure or Remove (not by overwriting Add of the same key).
func (c *Cache[K, V]) SetOnEvict(fn func(K, V)) { c.onEvict = fn }

// Add inserts or refreshes key with the given cost and promotes it to
// most-recently-used. Entries whose cost exceeds the whole capacity are
// rejected (returned false) since they could never be cached usefully.
func (c *Cache[K, V]) Add(key K, value V, cost int64) bool {
	if cost <= 0 {
		cost = 1
	}
	if cost > c.capacity {
		return false
	}
	if n, ok := c.entries[key]; ok {
		c.used += cost - n.cost
		n.value, n.cost = value, cost
		c.moveToFront(n)
	} else {
		n := &node[K, V]{key: key, value: value, cost: cost}
		c.entries[key] = n
		c.pushFront(n)
		c.used += cost
	}
	for c.used > c.capacity {
		c.evictOldest()
	}
	return true
}

// Get returns the value for key, promoting it to most-recently-used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if n, ok := c.entries[key]; ok {
		c.moveToFront(n)
		c.hits++
		return n.value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value for key without changing recency or stats.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if n, ok := c.entries[key]; ok {
		return n.value, true
	}
	var zero V
	return zero, false
}

// Contains reports presence without affecting recency or stats.
func (c *Cache[K, V]) Contains(key K) bool {
	_, ok := c.entries[key]
	return ok
}

// Remove evicts key if present and reports whether it was there.
func (c *Cache[K, V]) Remove(key K) bool {
	n, ok := c.entries[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.entries, key)
	c.used -= n.cost
	if c.onEvict != nil {
		c.onEvict(n.key, n.value)
	}
	return true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Used returns the total cost of cached entries.
func (c *Cache[K, V]) Used() int64 { return c.used }

// Capacity returns the configured capacity.
func (c *Cache[K, V]) Capacity() int64 { return c.capacity }

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// Purge removes every entry without invoking the eviction callback.
func (c *Cache[K, V]) Purge() {
	c.entries = make(map[K]*node[K, V])
	c.head, c.tail = nil, nil
	c.used = 0
}

// Keys returns the cached keys from most- to least-recently-used.
func (c *Cache[K, V]) Keys() []K {
	keys := make([]K, 0, len(c.entries))
	for n := c.head; n != nil; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

func (c *Cache[K, V]) evictOldest() {
	n := c.tail
	if n == nil {
		return
	}
	c.unlink(n)
	delete(c.entries, n.key)
	c.used -= n.cost
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(n.key, n.value)
	}
}

func (c *Cache[K, V]) pushFront(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
