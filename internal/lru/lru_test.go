package lru

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, capacity int64) *Cache[int, string] {
	t.Helper()
	c, err := New[int, string](capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, capacity := range []int64{0, -1} {
		if _, err := New[int, int](capacity); err == nil {
			t.Errorf("New(%d) should fail", capacity)
		}
	}
}

func TestAddGet(t *testing.T) {
	c := mustNew(t, 10)
	c.Add(1, "a", 1)
	c.Add(2, "b", 1)
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("Get(3) should miss")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := mustNew(t, 3)
	c.Add(1, "a", 1)
	c.Add(2, "b", 1)
	c.Add(3, "c", 1)
	c.Get(1) // promote 1; LRU order now 2,3,1
	c.Add(4, "d", 1)
	if c.Contains(2) {
		t.Fatal("2 should have been evicted (LRU)")
	}
	for _, k := range []int{1, 3, 4} {
		if !c.Contains(k) {
			t.Fatalf("%d should still be cached", k)
		}
	}
}

func TestCostEviction(t *testing.T) {
	c := mustNew(t, 100)
	c.Add(1, "a", 60)
	c.Add(2, "b", 30)
	if c.Used() != 90 {
		t.Fatalf("Used = %d, want 90", c.Used())
	}
	c.Add(3, "c", 50) // forces eviction of 1 (oldest)
	if c.Contains(1) {
		t.Fatal("1 should be evicted for cost")
	}
	if c.Used() != 80 {
		t.Fatalf("Used = %d, want 80", c.Used())
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := mustNew(t, 10)
	if c.Add(1, "huge", 11) {
		t.Fatal("oversized Add should return false")
	}
	if c.Len() != 0 {
		t.Fatal("oversized entry must not be stored")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := mustNew(t, 10)
	c.Add(1, "a", 2)
	c.Add(1, "a2", 5)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Used() != 5 {
		t.Fatalf("Used = %d, want 5", c.Used())
	}
	if v, _ := c.Peek(1); v != "a2" {
		t.Fatalf("Peek = %q, want a2", v)
	}
}

func TestRemove(t *testing.T) {
	c := mustNew(t, 10)
	c.Add(1, "a", 3)
	if !c.Remove(1) {
		t.Fatal("Remove(1) should report true")
	}
	if c.Remove(1) {
		t.Fatal("second Remove(1) should report false")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("cache should be empty after Remove")
	}
}

func TestOnEvict(t *testing.T) {
	c := mustNew(t, 2)
	var evicted []int
	c.SetOnEvict(func(k int, _ string) { evicted = append(evicted, k) })
	c.Add(1, "a", 1)
	c.Add(2, "b", 1)
	c.Add(3, "c", 1) // evicts 1
	c.Remove(2)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [1 2]", evicted)
	}
}

func TestKeysOrder(t *testing.T) {
	c := mustNew(t, 5)
	c.Add(1, "a", 1)
	c.Add(2, "b", 1)
	c.Add(3, "c", 1)
	c.Get(1)
	keys := c.Keys()
	want := []int{1, 3, 2}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestPurge(t *testing.T) {
	c := mustNew(t, 5)
	evictions := 0
	c.SetOnEvict(func(int, string) { evictions++ })
	c.Add(1, "a", 1)
	c.Add(2, "b", 1)
	c.Purge()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Purge should empty the cache")
	}
	if evictions != 0 {
		t.Fatal("Purge must not invoke the eviction callback")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := mustNew(t, 2)
	c.Add(1, "a", 1)
	c.Add(2, "b", 1)
	c.Peek(1) // must NOT promote 1
	c.Add(3, "c", 1)
	if c.Contains(1) {
		t.Fatal("1 should be evicted; Peek must not promote")
	}
}

func TestZeroCostTreatedAsOne(t *testing.T) {
	c := mustNew(t, 2)
	c.Add(1, "a", 0)
	c.Add(2, "b", 0)
	c.Add(3, "c", 0)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (zero cost should count as 1)", c.Len())
	}
}

// TestQuickInvariants property-tests structural invariants over random
// operation sequences: used cost never exceeds capacity, Len matches the
// linked list, and Get returns the last value added for a key.
func TestQuickInvariants(t *testing.T) {
	type op struct {
		Key   uint8
		Cost  uint8
		IsGet bool
	}
	f := func(ops []op) bool {
		c, err := New[uint8, int](64)
		if err != nil {
			return false
		}
		latest := make(map[uint8]int)
		for i, o := range ops {
			if o.IsGet {
				if v, ok := c.Get(o.Key); ok {
					if want, there := latest[o.Key]; !there || v != want {
						return false
					}
				}
			} else {
				cost := int64(o.Cost%32) + 1
				c.Add(o.Key, i, cost)
				latest[o.Key] = i
			}
			if c.Used() > c.Capacity() {
				return false
			}
			if len(c.Keys()) != c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddGet(b *testing.B) {
	c, err := New[int, int](1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(i&0xFFFF, i, 1)
		c.Get((i * 7) & 0xFFFF)
	}
}
