// Package metrics provides the small reporting toolkit the experiment
// harness uses: aligned text tables for the paper's tables and per-version
// series for its figures.
package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i := 0; i < cols && i < len(row); i++ {
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named curve of a figure: a value per backup version.
type Series struct {
	Name   string
	Points []float64
}

// Figure is a set of series over a shared x-axis (version numbers).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a named curve.
func (f *Figure) AddSeries(name string, points []float64) {
	f.Series = append(f.Series, Series{Name: name, Points: points})
}

// Render returns the figure as an aligned table: one row per version, one
// column per series — the same rows a plotting script would consume.
func (f *Figure) Render() string {
	t := NewTable(fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel), append([]string{f.XLabel}, names(f.Series)...)...)
	n := 0
	for _, s := range f.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		row := []string{strconv.Itoa(i + 1)}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, FormatFloat(s.Points[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// FormatFloat renders with precision adapted to magnitude.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case v >= 10:
		return strconv.FormatFloat(v, 'f', 1, 64)
	case v >= 0.01:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// FormatBytes renders a byte count with a binary unit.
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatPercent renders a ratio in [0,1] as a percentage.
func FormatPercent(v float64) string {
	return strconv.FormatFloat(v*100, 'f', 2, 64) + "%"
}
