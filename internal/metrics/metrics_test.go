package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("title missing: %q", lines[0])
	}
	// Columns align: 'value' column starts at the same offset everywhere.
	headerIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1")
	if headerIdx != rowIdx {
		t.Fatalf("misaligned: header at %d, row at %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("x")
	out := tbl.Render()
	if !strings.Contains(out, "x") {
		t.Fatal("row lost")
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{Title: "Fig", XLabel: "version", YLabel: "speed"}
	f.AddSeries("baseline", []float64{1, 2})
	f.AddSeries("hidestore", []float64{3, 4, 5})
	out := f.Render()
	for _, want := range []string{"baseline", "hidestore", "version", "speed", "5.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 3 version rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1234, "1234"},
		{56.78, "56.8"},
		{1.5, "1.500"},
		{0.001234, "0.00123"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{512, "512B"},
		{4 << 10, "4.0KB"},
		{4 << 20, "4.0MB"},
		{3 << 30, "3.0GB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.in); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.9153); got != "91.53%" {
		t.Fatalf("FormatPercent = %q", got)
	}
}
