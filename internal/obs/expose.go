package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusText renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, counter and
// gauge samples, and cumulative histogram buckets with le labels.
// A nil registry renders empty text.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	for _, inst := range r.sorted() {
		switch m := inst.(type) {
		case *Counter:
			writeHeader(&b, m.name, m.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", m.name, m.Value())
		case *Gauge:
			writeHeader(&b, m.name, m.help, "gauge")
			fmt.Fprintf(&b, "%s %d\n", m.name, m.Value())
		case *Histogram:
			writeHeader(&b, m.name, m.help, "histogram")
			counts, sum, count := m.snapshot()
			var cum uint64
			top := highestBucket(counts)
			for i := 0; i <= top; i++ {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m.name, BucketUpper(i), cum)
			}
			// The +Inf bucket must agree with _count; cum (the finite
			// buckets) may trail it if observations land mid-snapshot.
			if cum > count {
				count = cum
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, count)
			fmt.Fprintf(&b, "%s_sum %d\n", m.name, sum)
			fmt.Fprintf(&b, "%s_count %d\n", m.name, count)
		}
	}
	return b.String()
}

// WritePrometheus writes PrometheusText to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, r.PrometheusText())
	return err
}

// highestBucket returns the index of the last non-zero bucket (0 when
// the histogram is empty), bounding exposition size to observed range.
func highestBucket(counts [histBuckets]uint64) int {
	top := 0
	for i, c := range counts {
		if c != 0 {
			top = i
		}
	}
	return top
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// HistogramJSON is one histogram in the JSON exposition.
type HistogramJSON struct {
	Help    string       `json:"help,omitempty"`
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

// BucketJSON is one non-cumulative histogram bucket.
type BucketJSON struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// ScalarJSON is one counter or gauge in the JSON exposition.
type ScalarJSON struct {
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// SnapshotJSON is the registry's JSON exposition document.
type SnapshotJSON struct {
	Counters   map[string]ScalarJSON    `json:"counters,omitempty"`
	Gauges     map[string]ScalarJSON    `json:"gauges,omitempty"`
	Histograms map[string]HistogramJSON `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. Individual reads
// are atomic; the snapshot as a whole is not a consistent cut (see the
// registry tests for the exact guarantee). Nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() SnapshotJSON {
	snap := SnapshotJSON{
		Counters:   map[string]ScalarJSON{},
		Gauges:     map[string]ScalarJSON{},
		Histograms: map[string]HistogramJSON{},
	}
	for _, inst := range r.sorted() {
		switch m := inst.(type) {
		case *Counter:
			snap.Counters[m.name] = ScalarJSON{Help: m.help, Value: int64(m.Value())}
		case *Gauge:
			snap.Gauges[m.name] = ScalarJSON{Help: m.help, Value: m.Value()}
		case *Histogram:
			counts, sum, count := m.snapshot()
			hj := HistogramJSON{
				Help:  m.help,
				Count: count,
				Sum:   sum,
				P50:   m.Quantile(0.50),
				P99:   m.Quantile(0.99),
			}
			for i, c := range counts {
				if c != 0 {
					hj.Buckets = append(hj.Buckets, BucketJSON{LE: BucketUpper(i), Count: c})
				}
			}
			snap.Histograms[m.name] = hj
		}
	}
	return snap
}

// WriteJSON renders the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ValidateExposition parses Prometheus text exposition and reports the
// first structural violation: malformed sample lines, TYPE/HELP lines
// for metrics that never appear, histogram bucket counts that are not
// cumulative, or histograms missing their le="+Inf"/_sum/_count
// samples. It accepts any metric source, not just this registry — the
// CI gate runs it over the live /metrics scrape.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	hists := make(map[string]*histState)
	typed := make(map[string]string)
	sampled := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if len(fields) < 3 {
					return fmt.Errorf("line %d: %s without a metric name", lineNo, fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return fmt.Errorf("line %d: TYPE without a type", lineNo)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
					}
					typed[fields[2]] = fields[3]
					if fields[3] == "histogram" {
						hists[fields[2]] = &histState{}
					}
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		sampled[base(name)] = true
		if st := histFor(hists, name); st != nil {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				v := uint64(value)
				if le, ok := labels["le"]; !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				} else if le == "+Inf" {
					st.infSeen = true
					st.infCount = v
				} else {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("line %d: unparsable le=%q", lineNo, le)
					}
					if v < st.lastCum {
						return fmt.Errorf("line %d: histogram %s buckets not cumulative (%d after %d)",
							lineNo, base(name), v, st.lastCum)
					}
					st.lastCum = v
				}
			case strings.HasSuffix(name, "_sum"):
				st.sumSeen = true
			case strings.HasSuffix(name, "_count"):
				st.cntSeen = true
				st.count = uint64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, typ := range typed {
		if !sampled[name] {
			return fmt.Errorf("metric %s declared TYPE %s but has no samples", name, typ)
		}
	}
	for name, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", name)
		}
		if !st.sumSeen || !st.cntSeen {
			return fmt.Errorf("histogram %s missing _sum or _count", name)
		}
		if st.lastCum > st.infCount {
			return fmt.Errorf("histogram %s +Inf bucket %d below finite bucket %d", name, st.infCount, st.lastCum)
		}
		if st.infCount != st.count {
			return fmt.Errorf("histogram %s +Inf bucket %d != _count %d", name, st.infCount, st.count)
		}
	}
	return nil
}

// base strips histogram sample suffixes back to the declared name.
func base(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// histState tracks per-histogram validation across a scrape.
type histState struct {
	lastCum  uint64
	infSeen  bool
	sumSeen  bool
	cntSeen  bool
	infCount uint64
	count    uint64
}

// histFor returns the histogram state a sample belongs to, or nil for
// non-histogram samples. A plain metric named like x_count only
// matches when x was declared a histogram.
func histFor(hists map[string]*histState, name string) *histState {
	return hists[base(name)]
}

// parseSample splits one exposition sample line into metric name,
// label map and value. Timestamps (an optional trailing integer) are
// accepted and ignored.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		if err := parseLabels(line[i+1:j], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if name == "" || !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparsable value %q", fields[0])
	}
	return name, labels, value, nil
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", s)
		}
		dst[key] = rest[1 : 1+end]
		s = strings.TrimPrefix(strings.TrimSpace(rest[end+2:]), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

func validMetricName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return name != ""
}
