package obs

import (
	"strings"
	"testing"
)

func TestPrometheusTextRoundTripsThroughValidator(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hidestore_reads_total", "container reads").Add(42)
	reg.Gauge("hidestore_occupancy", "window occupancy").Set(-3)
	h := reg.Histogram("hidestore_fetch_ns", "fetch latency")
	for _, v := range []uint64{0, 1, 3, 900, 1_000_000} {
		h.Observe(v)
	}
	text := reg.PrometheusText()
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("our own exposition failed validation: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE hidestore_reads_total counter",
		"hidestore_reads_total 42",
		"hidestore_occupancy -3",
		`hidestore_fetch_ns_bucket{le="+Inf"} 5`,
		"hidestore_fetch_ns_sum 1000904",
		"hidestore_fetch_ns_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestValidateExpositionCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"non-cumulative buckets": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 10
h_count 5
`,
		"missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 5
h_sum 10
h_count 5
`,
		"missing _sum": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_count 5
`,
		"+Inf disagrees with _count": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_sum 10
h_count 6
`,
		"declared but unsampled": `# TYPE ghost counter
real 1
`,
		"bucket without le": `# TYPE h histogram
h_bucket 5
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"unparsable value": "m not_a_number\n",
		"bad metric name":  "9bad 1\n",
		"unknown TYPE":     "# TYPE m frobnitz\nm 1\n",
	}
	for name, body := range cases {
		if err := ValidateExposition(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

func TestValidateExpositionAcceptsForeignFormats(t *testing.T) {
	// Labels, timestamps, untyped metrics, float values: all legal.
	body := `# HELP go_goroutines Number of goroutines.
# TYPE go_goroutines gauge
go_goroutines 42
http_requests{method="get",code="200"} 1027 1395066363000
free_metric 3.14
`
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("legal foreign exposition rejected: %v", err)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "help c").Add(7)
	reg.Gauge("g", "").Set(-1)
	reg.Histogram("h_ns", "").Observe(100)
	snap := reg.Snapshot()
	if snap.Counters["c_total"].Value != 7 {
		t.Error("counter missing from snapshot")
	}
	if snap.Gauges["g"].Value != -1 {
		t.Error("gauge missing from snapshot")
	}
	hj := snap.Histograms["h_ns"]
	if hj.Count != 1 || hj.Sum != 100 || len(hj.Buckets) != 1 {
		t.Errorf("histogram snapshot wrong: %+v", hj)
	}
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"c_total"`) {
		t.Error("JSON exposition missing counter")
	}
}
