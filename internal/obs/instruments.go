package obs

// This file is the instrument catalog: every metric the backup and
// restore pipelines export, grouped into the bundles the engines hold.
// Names follow Prometheus conventions (unit-suffixed, _total for
// counters); the catalog is documented in DESIGN.md "Observability".
//
// Bundles are nil when the registry is nil: engines guard hot-path
// clock reads with one `!= nil` check and skip instrumentation
// entirely when the plane is off.

// BackupMetrics instruments the backup pipeline.
type BackupMetrics struct {
	Versions     *Counter
	LogicalBytes *Counter
	StoredBytes  *Counter
	Chunks       *Counter
	UniqueChunks *Counter

	// Per-item stage latencies (nanoseconds).
	ChunkingNS       *Histogram // one chunker.Next call
	FingerprintNS    *Histogram // one fp.Of call
	IndexLookupNS    *Histogram // one cache/index classification
	ContainerWriteNS *Histogram // one Store.Put of a sealed container
	RecipeCommitNS   *Histogram // one Recipes.Put
	StateCommitNS    *Histogram // one state-file commit

	// Per-version maintenance (nanoseconds per version).
	MigrateNS *Histogram
	MergeNS   *Histogram

	// Chunk-filter migration volume.
	MigratedChunks     *Counter
	ArchivalContainers *Counter

	// Chunk-buffer pool state, set from bufpool.Pool.Stats after each
	// backup. InUse should be 0 between backups — anything else is a
	// leaked buffer on the hot path.
	PoolInUse      *Gauge
	PoolInUseBytes *Gauge
	PoolSlabs      *Gauge
}

// NewBackupMetrics registers the backup instruments; nil registry
// yields a nil bundle (instrumentation off).
func NewBackupMetrics(r *Registry) *BackupMetrics {
	if r == nil {
		return nil
	}
	return &BackupMetrics{
		Versions:     r.Counter("hidestore_backup_versions_total", "backup versions committed"),
		LogicalBytes: r.Counter("hidestore_backup_logical_bytes_total", "logical stream bytes backed up"),
		StoredBytes:  r.Counter("hidestore_backup_stored_bytes_total", "unique payload bytes written"),
		Chunks:       r.Counter("hidestore_backup_chunks_total", "chunks classified"),
		UniqueChunks: r.Counter("hidestore_backup_unique_chunks_total", "chunks stored as unique"),

		ChunkingNS:       r.Histogram("hidestore_stage_chunking_ns", "per-chunk chunking latency (ns)"),
		FingerprintNS:    r.Histogram("hidestore_stage_fingerprint_ns", "per-chunk fingerprint latency (ns)"),
		IndexLookupNS:    r.Histogram("hidestore_stage_index_lookup_ns", "per-chunk index/cache lookup latency (ns)"),
		ContainerWriteNS: r.Histogram("hidestore_stage_container_write_ns", "per-container store write latency (ns)"),
		RecipeCommitNS:   r.Histogram("hidestore_stage_recipe_commit_ns", "per-recipe commit latency (ns)"),
		StateCommitNS:    r.Histogram("hidestore_stage_state_commit_ns", "per-state-file commit latency (ns)"),

		MigrateNS: r.Histogram("hidestore_stage_migrate_ns", "per-version cold-chunk migration latency (ns)"),
		MergeNS:   r.Histogram("hidestore_stage_merge_ns", "per-version sparse-container merge latency (ns)"),

		MigratedChunks:     r.Counter("hidestore_migrated_chunks_total", "chunks exiled to archival containers"),
		ArchivalContainers: r.Counter("hidestore_archival_containers_total", "archival containers created"),

		PoolInUse:      r.Gauge("hidestore_bufpool_in_use", "pooled chunk buffers currently checked out"),
		PoolInUseBytes: r.Gauge("hidestore_bufpool_in_use_bytes", "pooled capacity currently checked out"),
		PoolSlabs:      r.Gauge("hidestore_bufpool_slabs", "cumulative slab allocations by the chunk pool"),
	}
}

// RestoreMetrics instruments the restore pipeline.
type RestoreMetrics struct {
	Restores       *Counter
	BytesRestored  *Counter
	ContainerReads *Counter // identical by construction to restorecache.Stats.ContainerReads
	CacheHits      *Counter
	Chunks         *Counter

	RecipeReadNS     *Histogram // one Recipes.Get
	FlattenNS        *Histogram // one recipe-chain flattening pass
	ContainerFetchNS *Histogram // one policy-issued container acquire

	// Prefetch pipeline state.
	PrefetchOccupancy *Gauge   // containers currently in the read-ahead window
	PrefetchPlanned   *Counter // containers entered into read-ahead plans

	// Parallel-assembly pipeline state (RestoreWorkers > 1).
	AssemblyWorkersBusy *Gauge     // assembly workers currently filling a span
	AssemblySpans       *Counter   // spans dispatched to the assembly pool
	AssemblyStallNS     *Histogram // writer wait for the next in-order span (ns)
}

// NewRestoreMetrics registers the restore instruments; nil registry
// yields a nil bundle.
func NewRestoreMetrics(r *Registry) *RestoreMetrics {
	if r == nil {
		return nil
	}
	return &RestoreMetrics{
		Restores:       r.Counter("hidestore_restore_total", "restore runs completed"),
		BytesRestored:  r.Counter("hidestore_restore_bytes_total", "logical bytes restored"),
		ContainerReads: r.Counter("hidestore_restore_container_reads_total", "container reads issued by restore cache policies"),
		CacheHits:      r.Counter("hidestore_restore_cache_hits_total", "chunks served without a container read"),
		Chunks:         r.Counter("hidestore_restore_chunks_total", "chunk references restored"),

		RecipeReadNS:     r.Histogram("hidestore_stage_recipe_read_ns", "per-restore recipe read latency (ns)"),
		FlattenNS:        r.Histogram("hidestore_stage_flatten_ns", "per-restore recipe flattening latency (ns)"),
		ContainerFetchNS: r.Histogram("hidestore_stage_container_fetch_ns", "per-read container acquire latency (ns)"),

		PrefetchOccupancy: r.Gauge("hidestore_prefetch_occupancy", "containers currently held in the read-ahead window"),
		PrefetchPlanned:   r.Counter("hidestore_prefetch_planned_total", "containers entered into read-ahead plans"),

		AssemblyWorkersBusy: r.Gauge("hidestore_restore_assembly_workers_busy", "assembly workers currently filling a span"),
		AssemblySpans:       r.Counter("hidestore_restore_assembly_spans_total", "spans dispatched to the parallel assembly pool"),
		AssemblyStallNS:     r.Histogram("hidestore_restore_assembly_stall_ns", "writer wait for the next in-order span (ns)"),
	}
}

// ScrubMetrics instruments the online scrubber (background container
// verification).
type ScrubMetrics struct {
	Passes      *Counter // full scrub passes completed
	Containers  *Counter // container images verified
	Chunks      *Counter // stored chunks content-verified
	Bytes       *Counter // payload bytes content-verified
	Corruptions *Counter // containers found corrupt (after the definitive re-read)
	Quarantined *Counter // corrupt containers moved to quarantine
}

// NewScrubMetrics registers the scrubber instruments; nil registry
// yields a nil bundle.
func NewScrubMetrics(r *Registry) *ScrubMetrics {
	if r == nil {
		return nil
	}
	return &ScrubMetrics{
		Passes:      r.Counter("hidestore_scrub_passes_total", "full scrub passes completed"),
		Containers:  r.Counter("hidestore_scrub_containers_total", "container images verified by the scrubber"),
		Chunks:      r.Counter("hidestore_scrub_chunks_total", "stored chunks content-verified by the scrubber"),
		Bytes:       r.Counter("hidestore_scrub_bytes_total", "payload bytes content-verified by the scrubber"),
		Corruptions: r.Counter("hidestore_scrub_corruptions_total", "containers found corrupt by the scrubber"),
		Quarantined: r.Counter("hidestore_scrub_quarantined_total", "corrupt containers quarantined by the scrubber"),
	}
}

// BackendMetrics instruments the storage-backend stack (remote
// simulator, retry layer, local read cache).
type BackendMetrics struct {
	RemoteOps       *Counter // operations that reached the (simulated) remote
	RemoteBytes     *Counter // payload bytes moved to/from the remote
	TransientErrors *Counter // transient failures surfaced by the remote
	Retries         *Counter // re-attempts issued by the retry layer

	CacheHits      *Counter // container fetches served from the local cache
	CacheMisses    *Counter // fetches that had to read through
	CacheEvictions *Counter // cache files evicted by capacity pressure
	CacheBytes     *Gauge   // current on-disk cache footprint

	FetchNS *Histogram // one backend Get through the full stack (ns)
}

// NewBackendMetrics registers the backend instruments; nil registry
// yields a nil bundle.
func NewBackendMetrics(r *Registry) *BackendMetrics {
	if r == nil {
		return nil
	}
	return &BackendMetrics{
		RemoteOps:       r.Counter("hidestore_backend_remote_ops_total", "operations issued to the remote backend"),
		RemoteBytes:     r.Counter("hidestore_backend_remote_bytes_total", "payload bytes moved to or from the remote backend"),
		TransientErrors: r.Counter("hidestore_backend_transient_errors_total", "transient remote failures observed"),
		Retries:         r.Counter("hidestore_backend_retries_total", "backend operations re-attempted after a transient failure"),

		CacheHits:      r.Counter("hidestore_backend_cache_hits_total", "backend reads served from the local cache"),
		CacheMisses:    r.Counter("hidestore_backend_cache_misses_total", "backend reads that read through to the remote"),
		CacheEvictions: r.Counter("hidestore_backend_cache_evictions_total", "cache files evicted by capacity pressure"),
		CacheBytes:     r.Gauge("hidestore_backend_cache_bytes", "current on-disk backend cache footprint"),

		FetchNS: r.Histogram("hidestore_backend_fetch_ns", "per-read backend fetch latency through the full stack (ns)"),
	}
}

// RecoveryMetrics instruments startup recovery and durability events.
type RecoveryMetrics struct {
	Rollbacks     *Counter // recipes rolled back at startup
	RedoDeletes   *Counter // half-finished deletes completed at startup
	OrphansSwept  *Counter // unreferenced container images removed
	StartupsClean *Counter // startups that found nothing to repair
}

// NewRecoveryMetrics registers the recovery instruments; nil registry
// yields a nil bundle.
func NewRecoveryMetrics(r *Registry) *RecoveryMetrics {
	if r == nil {
		return nil
	}
	return &RecoveryMetrics{
		Rollbacks:     r.Counter("hidestore_recovery_rollbacks_total", "uncommitted recipes rolled back at startup"),
		RedoDeletes:   r.Counter("hidestore_recovery_redo_deletes_total", "half-finished deletes completed at startup"),
		OrphansSwept:  r.Counter("hidestore_recovery_orphans_total", "orphaned container images swept at startup"),
		StartupsClean: r.Counter("hidestore_recovery_clean_startups_total", "startups with nothing to repair"),
	}
}
