// Package obs is hidestore's observability plane: an atomic metrics
// registry (counters, gauges, log-bucketed histograms) with
// Prometheus-text and JSON exposition, lightweight spans written as a
// JSONL trace, and an optional debug HTTP server (/metrics, expvar,
// pprof).
//
// The plane is nil-safe and off by default. Every constructor accepts a
// nil receiver and every instrument method is a no-op on a nil
// instrument, so callers thread a single possibly-nil *Registry (and
// *Tracer) through their configs and instrument unconditionally:
//
//	var reg *obs.Registry            // nil: observability off
//	c := reg.Counter("reads_total", "container reads")
//	c.Inc()                          // no-op, no allocation
//
// The hot paths of the backup/restore pipelines rely on this: with the
// plane disabled the instrument calls compile to a nil check, which the
// no-op benchmarks in this package pin to zero allocations.
//
// The package is stdlib-only by design, like the rest of the module.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instrument that can move both ways (occupancy,
// footprints, resumable totals restored from a state file).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the value by delta (negative to decrease). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log2 buckets: bucket i (i >= 1) counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i - 1];
// bucket 0 counts zero observations. 64-bit values always fit.
const histBuckets = 65

// Histogram is a log-bucketed (powers of two) histogram. Observations
// are non-negative integers in the histogram's unit (nanoseconds for
// the *_ns instruments). Log bucketing keeps Observe allocation-free
// and O(1) while still resolving latency distributions across nine
// orders of magnitude.
type Histogram struct {
	name, help string
	counts     [histBuckets]atomic.Uint64
	sum        atomic.Uint64
	count      atomic.Uint64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 on nil.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketUpper returns the inclusive upper bound of bucket i ("le" in
// Prometheus exposition): 0 for bucket 0, 2^i - 1 otherwise.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// snapshot copies the bucket counts coherently enough for reporting:
// each bucket is read atomically; the histogram may move between
// reads, so derived quantities are clamped rather than trusted to be
// mutually consistent.
func (h *Histogram) snapshot() (counts [histBuckets]uint64, sum, count uint64) {
	if h == nil {
		return
	}
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.Load(), h.count.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly within the winning bucket. Returns 0
// when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, _ := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := float64(0)
			if i > 1 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(BucketUpper(i))
			frac := (rank - seen) / float64(c)
			return lo + frac*(hi-lo)
		}
		seen += float64(c)
	}
	return float64(BucketUpper(histBuckets - 1))
}

// Registry holds named instruments. A nil *Registry is the disabled
// plane: every lookup returns a nil instrument whose methods are
// no-ops. Lookups are get-or-create and safe for concurrent use;
// instrument operations are lock-free.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]any // *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{instruments: make(map[string]any)}
}

// sanitizeName maps an arbitrary string onto the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// lookup returns the instrument registered under name, creating it via
// mk when absent. A name already taken by a different kind yields a
// detached instrument: functional, but never exposed — the exposition
// formats require one kind per name.
func (r *Registry) lookup(name string, mk func(string) any, want func(any) bool) any {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.instruments[name]; ok {
		if want(existing) {
			return existing
		}
		return mk(name) // kind conflict: detached
	}
	inst := mk(name)
	r.instruments[name] = inst
	return inst
}

// Counter returns the counter registered under name, creating it if
// needed. Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	inst := r.lookup(name,
		func(n string) any { return &Counter{name: n, help: help} },
		func(v any) bool { _, ok := v.(*Counter); return ok })
	c, ok := inst.(*Counter)
	if !ok {
		return nil
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed. Nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	inst := r.lookup(name,
		func(n string) any { return &Gauge{name: n, help: help} },
		func(v any) bool { _, ok := v.(*Gauge); return ok })
	g, ok := inst.(*Gauge)
	if !ok {
		return nil
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// if needed. Nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	inst := r.lookup(name,
		func(n string) any { return &Histogram{name: n, help: help} },
		func(v any) bool { _, ok := v.(*Histogram); return ok })
	h, ok := inst.(*Histogram)
	if !ok {
		return nil
	}
	return h
}

// sorted returns the registered instruments ordered by name, so both
// exposition formats are deterministic.
func (r *Registry) sorted() []any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.instruments))
	for name := range r.instruments {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]any, 0, len(names))
	for _, name := range names {
		out = append(out, r.instruments[name])
	}
	r.mu.Unlock()
	return out
}
