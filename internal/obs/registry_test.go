package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the log2 bucketing: bucket 0 holds
// zero, bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21},
		{1<<20 - 1, 20},
		{math.MaxUint64, 64},
	}
	for _, tc := range cases {
		h := &Histogram{}
		h.Observe(tc.v)
		counts, sum, count := h.snapshot()
		if counts[tc.bucket] != 1 {
			got := -1
			for i, c := range counts {
				if c != 0 {
					got = i
				}
			}
			t.Errorf("Observe(%d): landed in bucket %d, want %d", tc.v, got, tc.bucket)
		}
		if sum != tc.v || count != 1 {
			t.Errorf("Observe(%d): sum=%d count=%d", tc.v, sum, count)
		}
		// The bucket's upper bound must cover the value, and the previous
		// bucket's must not.
		if upper := BucketUpper(tc.bucket); upper < tc.v {
			t.Errorf("BucketUpper(%d)=%d < observed %d", tc.bucket, upper, tc.v)
		}
		if tc.bucket > 0 {
			if lower := BucketUpper(tc.bucket - 1); lower >= tc.v {
				t.Errorf("BucketUpper(%d)=%d >= observed %d: value belongs one bucket down",
					tc.bucket-1, lower, tc.v)
			}
		}
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if got := BucketUpper(0); got != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", got)
	}
	if got := BucketUpper(1); got != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", got)
	}
	if got := BucketUpper(64); got != math.MaxUint64 {
		t.Errorf("BucketUpper(64) = %d, want MaxUint64", got)
	}
	if got := BucketUpper(histBuckets - 1); got != math.MaxUint64 {
		t.Errorf("BucketUpper(top) = %d, want MaxUint64", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	// 100 observations of 1000 (bucket 10: [512, 1023]).
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	p50 := h.Quantile(0.50)
	if p50 < 512 || p50 > 1023 {
		t.Errorf("p50 = %f outside the observed bucket [512, 1023]", p50)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile should be 0")
	}
}

// TestSnapshotUnderConcurrentIncrements pins the snapshot guarantee:
// while writers race, every scraped value is atomic (no torn reads) and
// monotone — a later snapshot never reports less than an earlier one
// for counters and histogram counts.
func TestSnapshotUnderConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h_ns", "")
	const writers, perWriter = 8, 5000

	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// One reader snapshotting continuously, checking monotonicity.
	readerErr := make(chan string, 1)
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var prevC, prevH uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot()
			cv := uint64(snap.Counters["c_total"].Value)
			hv := snap.Histograms["h_ns"].Count
			if cv < prevC || hv < prevH {
				select {
				case readerErr <- "snapshot went backwards":
				default:
				}
				return
			}
			prevC, prevH = cv, hv
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if got := c.Value(); got != writers*perWriter {
		t.Errorf("final counter %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("final histogram count %d, want %d", got, writers*perWriter)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("same", "")
	b := reg.Counter("same", "")
	if a != b {
		t.Error("same name should return the same counter")
	}
	// A kind conflict yields a detached (but functional) instrument and
	// must not clobber the registered one.
	g := reg.Gauge("same", "")
	g.Set(7)
	a.Inc()
	if a.Value() != 1 {
		t.Error("registered counter affected by detached gauge")
	}
	if strings.Contains(reg.PrometheusText(), "gauge") {
		t.Error("detached instrument leaked into exposition")
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name":    "ok_name",
		"has space":  "has_space",
		"1leading":   "_leading",
		"tail9":      "tail9",
		"":           "_",
		"dots.too":   "dots_too",
		"colons:are": "colons:are",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestNilSafety exercises every nil-receiver path the engines rely on.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z", "")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read zero")
	}
	if reg.PrometheusText() != "" {
		t.Error("nil registry must render empty exposition")
	}
	if got := reg.Snapshot(); len(got.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if NewBackupMetrics(nil) != nil || NewRestoreMetrics(nil) != nil || NewRecoveryMetrics(nil) != nil {
		t.Error("nil registry must yield nil bundles")
	}
}

// TestNoopPathAllocs pins the disabled plane's overhead: zero
// allocations per instrument call and per span operation.
func TestNoopPathAllocs(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	h := reg.Histogram("y", "")
	var tr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(123)
		span := tr.Start("op", nil)
		span.SetAttr("k", 1)
		span.End()
		tr.Event("e", nil, nil)
	}); n != 0 {
		t.Errorf("disabled plane allocates %.1f per op, want 0", n)
	}
}
