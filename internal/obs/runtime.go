package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeMetrics is the runtime-health bundle: Go memory, GC and
// scheduler gauges sampled in the background while a long-running
// command (a server with -debug-addr, a large restore) is in flight.
// Like every bundle, a nil registry yields a nil bundle.
type RuntimeMetrics struct {
	HeapBytes   *Gauge // live heap allocation (MemStats.HeapAlloc)
	HeapObjects *Gauge // live heap objects
	Goroutines  *Gauge // runtime.NumGoroutine
	GCCycles    *Gauge // completed GC cycles (MemStats.NumGC)
	GCPauseNS   *Histogram
}

// NewRuntimeMetrics registers the runtime-health instruments; nil
// registry yields a nil bundle.
func NewRuntimeMetrics(r *Registry) *RuntimeMetrics {
	if r == nil {
		return nil
	}
	return &RuntimeMetrics{
		HeapBytes:   r.Gauge("hidestore_runtime_heap_bytes", "live heap bytes (MemStats.HeapAlloc)"),
		HeapObjects: r.Gauge("hidestore_runtime_heap_objects", "live heap objects"),
		Goroutines:  r.Gauge("hidestore_runtime_goroutines", "current goroutine count"),
		GCCycles:    r.Gauge("hidestore_runtime_gc_cycles", "completed GC cycles"),
		GCPauseNS:   r.Histogram("hidestore_runtime_gc_pause_ns", "stop-the-world GC pause latency (ns)"),
	}
}

// RuntimeSampler periodically reads runtime.MemStats into a
// RuntimeMetrics bundle. Each sample drains the GC pause ring
// (MemStats.PauseNs) of pauses that completed since the previous
// sample, so the pause histogram sees every pause exactly once as long
// as fewer than 256 GC cycles elapse between samples; past that the
// ring has wrapped and only the newest 256 are observable.
type RuntimeSampler struct {
	mx       *RuntimeMetrics
	interval time.Duration
	lastGC   uint32

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// DefaultSampleInterval is used when StartRuntimeSampler is given a
// non-positive interval.
const DefaultSampleInterval = 5 * time.Second

// StartRuntimeSampler registers the runtime bundle on r and starts a
// background goroutine sampling it every interval (non-positive means
// DefaultSampleInterval). One sample is taken synchronously before
// returning so short-lived commands still export a snapshot. Returns
// nil — no goroutine, nothing registered — when r is nil; Stop is safe
// on a nil sampler.
func StartRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	mx := NewRuntimeMetrics(r)
	if mx == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &RuntimeSampler{
		mx:       mx,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample()
	go s.loop()
	return s
}

// Stop halts the sampler, takes one final sample so the exported
// snapshot reflects process exit, and waits for the goroutine to
// finish. Idempotent and safe on nil.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.sample()
	})
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.sample()
		}
	}
}

// sample reads MemStats once and updates the bundle. ReadMemStats
// stops the world briefly, which is why sampling is periodic rather
// than per-scrape.
func (s *RuntimeSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.mx.HeapBytes.Set(int64(m.HeapAlloc))
	s.mx.HeapObjects.Set(int64(m.HeapObjects))
	s.mx.Goroutines.Set(int64(runtime.NumGoroutine()))
	s.mx.GCCycles.Set(int64(m.NumGC))
	// Drain pauses completed since the last sample from the 256-entry
	// ring; if more than 256 cycles elapsed, the older ones are gone.
	first := s.lastGC
	if m.NumGC > first+uint32(len(m.PauseNs)) {
		first = m.NumGC - uint32(len(m.PauseNs))
	}
	for i := first; i < m.NumGC; i++ {
		s.mx.GCPauseNS.Observe(m.PauseNs[i%uint32(len(m.PauseNs))])
	}
	s.lastGC = m.NumGC
}
