package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, 10*time.Millisecond)
	if s == nil {
		t.Fatal("sampler nil on live registry")
	}
	// Force GC cycles so the pause histogram has something to drain.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	time.Sleep(50 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent

	mx := NewRuntimeMetrics(reg) // same names resolve to the same instruments
	if mx.HeapBytes.Value() <= 0 {
		t.Fatalf("heap bytes gauge = %d, want > 0", mx.HeapBytes.Value())
	}
	if mx.Goroutines.Value() <= 0 {
		t.Fatalf("goroutines gauge = %d, want > 0", mx.Goroutines.Value())
	}
	if mx.GCCycles.Value() < 3 {
		t.Fatalf("gc cycles gauge = %d, want >= 3", mx.GCCycles.Value())
	}
	if mx.GCPauseNS.Count() == 0 {
		t.Fatal("gc pause histogram empty after forced GCs")
	}
	text := reg.PrometheusText()
	if !strings.Contains(text, "hidestore_runtime_heap_bytes") {
		t.Fatal("runtime gauges missing from exposition")
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition with runtime bundle invalid: %v", err)
	}
}

func TestRuntimeSamplerDrainsEachPauseOnce(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Hour) // only explicit samples
	runtime.GC()
	s.sample()
	mx := NewRuntimeMetrics(reg)
	n := mx.GCPauseNS.Count()
	s.sample() // no GC in between: nothing new to drain
	if got := mx.GCPauseNS.Count(); got != n {
		t.Fatalf("pause count changed without GC: %d -> %d", n, got)
	}
	runtime.GC()
	s.sample()
	if got := mx.GCPauseNS.Count(); got <= n {
		t.Fatalf("pause count did not grow after GC: %d -> %d", n, got)
	}
	s.Stop()
}

func TestRuntimeSamplerNil(t *testing.T) {
	if s := StartRuntimeSampler(nil, time.Second); s != nil {
		t.Fatal("sampler on nil registry should be nil")
	}
	var s *RuntimeSampler
	s.Stop() // must not panic
	if mx := NewRuntimeMetrics(nil); mx != nil {
		t.Fatal("bundle on nil registry should be nil")
	}
}

func TestRuntimeSamplerStopsGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, 5*time.Millisecond)
	s.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
}
