package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// expvarOnce guards the process-wide expvar publication: expvar's
// registry is global and rejects duplicate names, so only the first
// debug server publishes (later servers still serve /debug/vars, which
// reads the same global registry).
var expvarOnce sync.Once

// DebugServer is the live-introspection HTTP endpoint: /metrics
// (Prometheus text), /metrics.json, /debug/vars (expvar) and
// /debug/pprof. It binds its own mux — nothing leaks into
// http.DefaultServeMux — and shuts down cleanly, leaving no serving
// goroutine behind.
type DebugServer struct {
	srv  *http.Server
	lis  net.Listener
	done chan error
}

// ServerOption customizes the debug server's mux before it starts
// serving. Options run after the built-in routes are installed, so a
// pattern that collides with a built-in panics per net/http rules —
// callers mount new endpoints, they don't replace the core ones.
type ServerOption func(mux *http.ServeMux)

// WithHandler mounts h at pattern on the debug server's mux. The CLI
// uses this to expose application-level endpoints (/healthz,
// /debug/layout) that need state the obs package cannot know about.
func WithHandler(pattern string, h http.Handler) ServerOption {
	return func(mux *http.ServeMux) { mux.Handle(pattern, h) }
}

// StartDebugServer listens on addr (e.g. "127.0.0.1:6060", or ":0" for
// an ephemeral port) and serves reg. The caller must Shutdown it; wire
// that to ctx cancellation to satisfy clean-exit on SIGINT.
func StartDebugServer(addr string, reg *Registry, opts ...ServerOption) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	expvarOnce.Do(func() {
		expvar.Publish("hidestore_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//hidelint:ignore discarded-error HTTP response write; the client sees the truncation, the server has no recourse
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		//hidelint:ignore discarded-error HTTP response write; the client sees the truncation, the server has no recourse
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis:  lis,
		done: make(chan error, 1),
	}
	go func() { d.done <- d.srv.Serve(lis) }()
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.lis.Addr().String()
}

// Shutdown stops the server gracefully and waits for the serving
// goroutine to exit. Safe on nil and after a prior Shutdown.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil {
		return nil
	}
	err := d.srv.Shutdown(ctx)
	// Serve always returns once Shutdown begins; reap the goroutine so
	// the leak checks in the CLI tests stay clean. ErrServerClosed is
	// the expected verdict.
	if serr := <-d.done; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	d.done = closedErrChan // subsequent Shutdowns don't block
	return err
}

// closedErrChan is a pre-closed channel so repeated Shutdown calls
// return immediately.
var closedErrChan = func() chan error {
	ch := make(chan error)
	close(ch)
	return ch
}()
