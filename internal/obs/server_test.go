package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hidestore_test_total", "test counter").Add(9)
	reg.Histogram("hidestore_test_ns", "test latency").Observe(1000)

	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, "hidestore_test_total 9") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if err := ValidateExposition(strings.NewReader(metrics)); err != nil {
		t.Errorf("/metrics exposition malformed: %v", err)
	}
	if js := getBody(t, base+"/metrics.json"); !strings.Contains(js, "hidestore_test_total") {
		t.Errorf("/metrics.json missing counter:\n%s", js)
	}
	if vars := getBody(t, base+"/debug/vars"); !strings.Contains(vars, "hidestore_metrics") {
		t.Errorf("/debug/vars missing published registry:\n%.200s", vars)
	}
	// A short CPU profile proves the pprof wiring end to end.
	if prof := getBody(t, base+"/debug/pprof/profile?seconds=1"); len(prof) == 0 {
		t.Error("/debug/pprof/profile returned an empty profile")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still answering after Shutdown")
	}
}

// TestDebugServerNoGoroutineLeak pins the clean-exit criterion: after
// Shutdown returns, the serving goroutine is gone.
func TestDebugServerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		srv, err := StartDebugServer("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		// Touch the server so at least one request cycles through.
		_ = getBody(t, fmt.Sprintf("http://%s/metrics", srv.Addr()))
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}
	// Idle HTTP keep-alive goroutines drain asynchronously; poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after repeated start/shutdown cycles",
		before, runtime.NumGoroutine())
}

func TestNilDebugServer(t *testing.T) {
	var srv *DebugServer
	if srv.Addr() != "" {
		t.Error("nil server Addr must be empty")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("nil server Shutdown: %v", err)
	}
}
