package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"hidestore/internal/metrics"
)

// StageSummary aggregates every record sharing one span name.
type StageSummary struct {
	Name  string
	Count int
	// Total, Min, Max, P50 and P99 are over record durations. Events
	// (zero duration) are counted but excluded from latency stats.
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P99   time.Duration
	// Bytes sums the records' "bytes" attributes; MBPerSec is
	// Bytes over Total when both are present.
	Bytes    int64
	MBPerSec float64
	// Chunks sums the records' "chunks" attributes — the per-stage
	// chunk accounting the identity tests check against engine reports
	// (it must be exact however many chunking lanes or index shards
	// contributed to a stage).
	Chunks int64
}

// TraceSummary is the per-stage aggregation of one JSONL trace.
type TraceSummary struct {
	Records int
	Spans   int
	Events  int
	// Wall is the span of trace time covered: the latest record end
	// minus the earliest record start, per trace anchor. Traces from
	// several processes (append mode) are summed over their segments'
	// extents, approximated by the max end offset seen.
	Wall   time.Duration
	Stages []StageSummary
}

// SummarizeTrace aggregates a JSONL trace into per-stage latency and
// throughput statistics, keyed by span name and sorted by total time
// descending. Unparsable lines abort with a line-numbered error.
func SummarizeTrace(r io.Reader) (*TraceSummary, error) {
	type acc struct {
		durs   []time.Duration
		total  time.Duration
		bytes  int64
		chunks int64
		count  int
	}
	accs := make(map[string]*acc)
	sum := &TraceSummary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	lineNo := 0
	var maxEnd int64
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		sum.Records++
		if end := rec.Start + rec.Dur; end > maxEnd {
			maxEnd = end
		}
		if rec.Name == "trace.open" || rec.Name == "trace.close" {
			continue
		}
		a := accs[rec.Name]
		if a == nil {
			a = &acc{}
			accs[rec.Name] = a
		}
		a.count++
		if rec.Dur == 0 {
			sum.Events++
		} else {
			sum.Spans++
			a.durs = append(a.durs, time.Duration(rec.Dur))
			a.total += time.Duration(rec.Dur)
		}
		if b, ok := rec.Attrs["bytes"]; ok {
			a.bytes += b
		}
		if c, ok := rec.Attrs["chunks"]; ok {
			a.chunks += c
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace: %w", err)
	}
	sum.Wall = time.Duration(maxEnd)
	for name, a := range accs {
		st := StageSummary{Name: name, Count: a.count, Total: a.total, Bytes: a.bytes, Chunks: a.chunks}
		if len(a.durs) > 0 {
			sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
			st.Min = a.durs[0]
			st.Max = a.durs[len(a.durs)-1]
			st.P50 = quantileDur(a.durs, 0.50)
			st.P99 = quantileDur(a.durs, 0.99)
		}
		if a.bytes > 0 && a.total > 0 {
			st.MBPerSec = float64(a.bytes) / (1 << 20) / a.total.Seconds()
		}
		sum.Stages = append(sum.Stages, st)
	}
	sort.Slice(sum.Stages, func(i, j int) bool {
		if sum.Stages[i].Total != sum.Stages[j].Total {
			return sum.Stages[i].Total > sum.Stages[j].Total
		}
		return sum.Stages[i].Name < sum.Stages[j].Name
	})
	return sum, nil
}

// quantileDur reads the q-quantile from an ascending slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Render formats the summary as aligned tables via internal/metrics.
func (s *TraceSummary) Render() string {
	t := metrics.NewTable(
		fmt.Sprintf("Trace summary: %d records (%d spans, %d events) over %s",
			s.Records, s.Spans, s.Events, s.Wall.Round(time.Microsecond)),
		"stage", "count", "total", "p50", "p99", "max", "MB/s")
	for _, st := range s.Stages {
		mbs := ""
		if st.MBPerSec > 0 {
			mbs = metrics.FormatFloat(st.MBPerSec)
		}
		t.AddRow(st.Name,
			fmt.Sprintf("%d", st.Count),
			fmtDur(st.Total),
			fmtDur(st.P50),
			fmtDur(st.P99),
			fmtDur(st.Max),
			mbs)
	}
	return t.Render()
}

// SpanCount returns how many records carry the given span name (the
// conformance tests cross-check container.fetch counts against the
// restore accounting).
func (s *TraceSummary) SpanCount(name string) int {
	for _, st := range s.Stages {
		if st.Name == name {
			return st.Count
		}
	}
	return 0
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
