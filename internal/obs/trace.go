package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRecord is one JSONL trace line: a span (Dur > 0 or a completed
// interval) or a point event (Dur == 0, no children). Start and Dur
// are nanoseconds on the tracer's monotonic clock, relative to the
// tracer's creation; Unix is the wall-clock anchor recorded once in
// the synthetic "trace.open" record so offsets can be mapped back to
// wall time.
type TraceRecord struct {
	// ID and Parent link spans into a tree; Parent 0 means root.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"par,omitempty"`
	// Name is the span taxonomy entry ("backup", "restore",
	// "container.fetch", "stage.chunking", ...).
	Name string `json:"span"`
	// Start is the span's begin offset in nanoseconds (monotonic).
	Start int64 `json:"start_ns"`
	// Dur is the span's duration in nanoseconds; 0 for events.
	Dur int64 `json:"dur_ns"`
	// Unix is set only on the "trace.open" and "trace.close" anchors.
	Unix int64 `json:"unix,omitempty"`
	// Attrs carries small span-scoped values (version, cid, bytes).
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// Tracer serializes spans to one JSONL stream. All methods are safe
// for concurrent use; a nil *Tracer is the disabled tracer (Start
// returns a nil span, Event is a no-op) and costs one nil check.
//
// Durations come from Go's monotonic clock (time.Since on the tracer's
// anchor), so spans are immune to wall-clock steps.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	anchor time.Time
	nextID atomic.Uint64
	open   atomic.Int64 // spans started but not yet ended
	closed bool         // trace.close anchor already written
	err    error        // sticky: first write failure, reported by Close
}

// NewTracer writes JSONL records to w, starting with a "trace.open"
// anchor that records the wall clock. If w is also an io.Closer,
// Close closes it.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, anchor: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	t.emit(TraceRecord{
		ID:   t.nextID.Add(1),
		Name: "trace.open",
		Unix: t.anchor.Unix(),
	})
	return t
}

// OpenTraceFile appends a tracer to the JSONL file at path, creating
// it if needed. Append mode lets one trace file collect several CLI
// invocations; each contributes its own "trace.open" anchor.
func OpenTraceFile(path string) (*Tracer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open trace: %w", err)
	}
	return NewTracer(f), nil
}

// Span is one in-flight interval. A nil *Span is the disabled span:
// End and SetAttr are no-ops, and a nil span is a valid parent
// (children become roots). Spans are not reusable after End.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Duration
	mu     sync.Mutex
	attrs  map[string]int64
}

// Start begins a span under parent (nil for a root span). Returns nil
// when the tracer is nil.
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		t:     t,
		id:    t.nextID.Add(1),
		name:  name,
		start: time.Since(t.anchor),
	}
	if parent != nil {
		s.parent = parent.id
	}
	t.open.Add(1)
	return s
}

// OpenSpans reports how many spans have been started but not yet
// ended. A span only writes its record at End, so a leaked span is
// invisible in the JSONL stream — this counter is the balance check:
// between operations a healthy tracer reads 0, and any code path that
// abandons a started span (an early error return, say) shows up as a
// persistent imbalance. Zero on a nil tracer.
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// SetAttr attaches a small integer attribute (version, cid, bytes,
// chunks) to the span. No-op on a nil span.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// End completes the span and writes its record. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.t.anchor)
	s.mu.Lock()
	attrs := s.attrs
	s.mu.Unlock()
	s.t.open.Add(-1)
	s.t.emit(TraceRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  int64(s.start),
		Dur:    int64(end - s.start),
		Attrs:  attrs,
	})
}

// Event writes a point record (Dur 0) under parent. No-op on a nil
// tracer. The attrs map is consumed as-is; pass nil for none.
func (t *Tracer) Event(name string, parent *Span, attrs map[string]int64) {
	if t == nil {
		return
	}
	rec := TraceRecord{
		ID:    t.nextID.Add(1),
		Name:  name,
		Start: int64(time.Since(t.anchor)),
		Attrs: attrs,
	}
	if parent != nil {
		rec.Parent = parent.id
	}
	t.emit(rec)
}

// EmitStage writes a stage-aggregate record under parent: a pipeline
// stage (chunking, fingerprinting) runs interleaved with its peers, so
// its cost is the sum of per-item latencies, not one wall interval.
// The record carries that cumulative duration with the phase start as
// its offset; the trace summary aggregates it like any span.
func (t *Tracer) EmitStage(name string, parent *Span, start time.Time, cum time.Duration, attrs map[string]int64) {
	if t == nil {
		return
	}
	rec := TraceRecord{
		ID:    t.nextID.Add(1),
		Name:  name,
		Start: int64(start.Sub(t.anchor)),
		Dur:   int64(cum),
		Attrs: attrs,
	}
	if parent != nil {
		rec.Parent = parent.id
	}
	t.emit(rec)
}

// emit serializes one record. Failures are sticky and surfaced by
// Close: tracing must never fail the operation it observes.
func (t *Tracer) emit(rec TraceRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		// Unreachable for TraceRecord's field types; recorded anyway.
		t.mu.Lock()
		if t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	data = append(data, '\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
	}
}

// Close writes the "trace.close" anchor, then flushes and closes the
// underlying stream and reports the first write error, if any. The
// anchor carries the wall clock (like "trace.open") and an
// "open_spans" attribute with the balance counter at close time, so
// offline tools can verify a finalized segment without replaying it:
// a segment whose close anchor reads open_spans 0 had every span
// ended. Close is idempotent — the anchor is written once — and safe
// on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	already := t.closed
	t.closed = true
	t.mu.Unlock()
	if !already {
		t.emit(TraceRecord{
			ID:    t.nextID.Add(1),
			Name:  "trace.close",
			Start: int64(time.Since(t.anchor)),
			Unix:  time.Now().Unix(),
			Attrs: map[string]int64{"open_spans": t.open.Load()},
		})
	}
	t.mu.Lock()
	err := t.err
	t.mu.Unlock()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
		t.closer = nil
	}
	return err
}
