package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeTrace parses a JSONL buffer into records.
func decodeTrace(t *testing.T, data string) []TraceRecord {
	t.Helper()
	var recs []TraceRecord
	sc := bufio.NewScanner(strings.NewReader(data))
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestSpanNestingAndOrdering checks the JSONL output end to end: the
// anchor record comes first, children reference their parent's ID,
// records appear in completion order, and offsets are monotone and
// consistent (a child lies within its parent's interval).
func TestSpanNestingAndOrdering(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)

	root := tr.Start("restore", nil)
	child := tr.Start("container.fetch", root)
	child.SetAttr("cid", 7)
	child.End()
	tr.Event("cache.hit", root, map[string]int64{"chunks": 3})
	root.SetAttr("version", 2)
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs := decodeTrace(t, buf.String())
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5 (open, child, event, root, close)", len(recs))
	}
	anchor, childRec, eventRec, rootRec := recs[0], recs[1], recs[2], recs[3]

	if anchor.Name != "trace.open" || anchor.Unix == 0 {
		t.Errorf("first record must be the trace.open anchor with a wall clock, got %+v", anchor)
	}
	if closing := recs[4]; closing.Name != "trace.close" || closing.Unix == 0 || closing.Attrs["open_spans"] != 0 {
		t.Errorf("last record must be a balanced trace.close anchor, got %+v", closing)
	}
	if childRec.Name != "container.fetch" || rootRec.Name != "restore" {
		t.Errorf("completion order violated: %q before %q", childRec.Name, rootRec.Name)
	}
	if childRec.Parent != rootRec.ID {
		t.Errorf("child parent %d != root id %d", childRec.Parent, rootRec.ID)
	}
	if eventRec.Parent != rootRec.ID || eventRec.Dur != 0 {
		t.Errorf("event must be a zero-duration child of root, got %+v", eventRec)
	}
	if rootRec.Parent != 0 {
		t.Errorf("root span must have parent 0, got %d", rootRec.Parent)
	}
	if childRec.Attrs["cid"] != 7 || rootRec.Attrs["version"] != 2 {
		t.Error("attrs lost in serialization")
	}
	// Interval containment: child within root.
	if childRec.Start < rootRec.Start {
		t.Errorf("child starts (%d) before root (%d)", childRec.Start, rootRec.Start)
	}
	if childEnd, rootEnd := childRec.Start+childRec.Dur, rootRec.Start+rootRec.Dur; childEnd > rootEnd {
		t.Errorf("child ends (%d) after root (%d)", childEnd, rootEnd)
	}
}

func TestEmitStage(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	start := time.Now()
	tr.EmitStage("stage.chunking", nil, start, 123*time.Millisecond,
		map[string]int64{"bytes": 1 << 20})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs := decodeTrace(t, buf.String())
	st := recs[1] // after the trace.open anchor, before trace.close
	if st.Name != "stage.chunking" || st.Dur != int64(123*time.Millisecond) {
		t.Errorf("stage record wrong: %+v", st)
	}
	if st.Attrs["bytes"] != 1<<20 {
		t.Error("stage attrs lost")
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	span := tr.Start("x", nil)
	if span != nil {
		t.Fatal("nil tracer must return a nil span")
	}
	span.SetAttr("k", 1) // must not panic
	span.End()
	tr.Event("e", nil, nil)
	tr.EmitStage("s", nil, time.Now(), time.Second, nil)
	if err := tr.Close(); err != nil {
		t.Errorf("nil tracer Close: %v", err)
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errWriteFailed
	}
	w.n--
	return len(p), nil
}

var errWriteFailed = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

// TestTracerStickyError: a write failure never breaks the traced
// operation — it is reported once, by Close.
func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(&failWriter{n: 1}) // anchor succeeds, everything after fails
	s := tr.Start("op", nil)
	s.End()
	tr.Event("e", nil, nil)
	if err := tr.Close(); err == nil {
		t.Fatal("Close must surface the sticky write error")
	}
}

func TestSummarizeTrace(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	root := tr.Start("restore", nil)
	for i := 0; i < 3; i++ {
		c := tr.Start("container.fetch", root)
		c.End()
	}
	tr.Event("container.fetch.error", root, nil)
	root.SetAttr("bytes", 4<<20)
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := SummarizeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.SpanCount("container.fetch"); got != 3 {
		t.Errorf("container.fetch count = %d, want 3", got)
	}
	if got := sum.SpanCount("container.fetch.error"); got != 1 {
		t.Errorf("error event count = %d, want 1", got)
	}
	if sum.SpanCount("restore") != 1 {
		t.Error("restore span missing")
	}
	out := sum.Render()
	if !strings.Contains(out, "container.fetch") || !strings.Contains(out, "restore") {
		t.Errorf("render missing stages:\n%s", out)
	}
}

// TestTraceCloseAnchor: Close writes exactly one closing anchor even
// when called twice, and the anchor reports the open-span imbalance at
// close time so offline validators can flag leaked spans.
func TestTraceCloseAnchor(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	leaked := tr.Start("op", nil)
	_ = leaked // never ended: simulates an abandoned span
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs := decodeTrace(t, buf.String())
	var closes []TraceRecord
	for _, rec := range recs {
		if rec.Name == "trace.close" {
			closes = append(closes, rec)
		}
	}
	if len(closes) != 1 {
		t.Fatalf("got %d trace.close anchors, want exactly 1", len(closes))
	}
	if closes[0].Attrs["open_spans"] != 1 {
		t.Errorf("close anchor open_spans = %d, want 1 (leaked span)", closes[0].Attrs["open_spans"])
	}
	if closes[0].Unix == 0 {
		t.Error("close anchor must carry the wall clock")
	}
	// The summary must tolerate both anchors without counting them.
	sum, err := SummarizeTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.SpanCount("trace.close") != 0 || sum.SpanCount("trace.open") != 0 {
		t.Error("anchors must be excluded from stage aggregation")
	}
}

func TestSummarizeTraceRejectsGarbage(t *testing.T) {
	if _, err := SummarizeTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line must fail with an error")
	}
}
