// Package pipeline provides the staged-concurrency scaffolding the dedup
// engines are built on, mirroring destor's pipelined architecture
// (chunking → hashing → indexing → rewriting → storing, §5.1 of the
// paper). Stages are connected by bounded channels; the first error
// cancels the whole pipeline and Wait returns it after every goroutine has
// exited (no fire-and-forget goroutines).
package pipeline

import (
	"context"
	"sync"
)

// Group runs related goroutines and collects their first error, like
// golang.org/x/sync/errgroup but stdlib-only. The zero value is not
// usable; construct with WithContext.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	errOnce sync.Once
	err     error
}

// WithContext returns a Group whose context is cancelled on first error
// or when Wait completes.
func WithContext(ctx context.Context) (*Group, context.Context) {
	gctx, cancel := context.WithCancel(ctx)
	return &Group{ctx: gctx, cancel: cancel}, gctx
}

// Go runs fn in a goroutine tracked by the group. A non-nil return
// cancels the group's context; only the first error is kept.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until every goroutine started with Go has returned, then
// returns the first error (nil if none).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// Produce runs gen in the group, feeding its emissions into the returned
// channel (closed when gen returns). gen must return promptly once emit
// reports false (context cancelled).
func Produce[T any](g *Group, buf int, gen func(emit func(T) bool) error) <-chan T {
	out := make(chan T, buf)
	g.Go(func() error {
		defer close(out)
		emit := func(v T) bool {
			select {
			case out <- v:
				return true
			case <-g.ctx.Done():
				return false
			}
		}
		return gen(emit)
	})
	return out
}

// Transform runs `workers` goroutines applying fn to every item of in,
// forwarding results to the returned channel (closed when all workers
// finish). Ordering across workers is not preserved; use one worker for
// order-sensitive stages.
func Transform[In, Out any](g *Group, workers, buf int, in <-chan In, fn func(In) (Out, error)) <-chan Out {
	if workers <= 0 {
		workers = 1
	}
	out := make(chan Out, buf)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		g.Go(func() error {
			defer wg.Done()
			for {
				select {
				case v, ok := <-in:
					if !ok {
						return nil
					}
					res, err := fn(v)
					if err != nil {
						return err
					}
					select {
					case out <- res:
					case <-g.ctx.Done():
						return g.ctx.Err()
					}
				case <-g.ctx.Done():
					return g.ctx.Err()
				}
			}
		})
	}
	g.Go(func() error {
		wg.Wait()
		close(out)
		// On early error the workers stop consuming, but the producer
		// feeding `in` may not be context-aware (Produce's emit is, raw
		// channel writers often are not). Drain what it has in flight so
		// its sends never block past cancellation; the drain costs
		// nothing on the happy path because `in` is already closed and
		// empty. The producer must still close `in` eventually — that
		// contract is unchanged.
		for range in {
		}
		return nil
	})
	return out
}

// Sink consumes in with fn until the channel closes or the group is
// cancelled.
func Sink[T any](g *Group, in <-chan T, fn func(T) error) {
	g.Go(func() error {
		for {
			select {
			case v, ok := <-in:
				if !ok {
					return nil
				}
				if err := fn(v); err != nil {
					return err
				}
			case <-g.ctx.Done():
				return g.ctx.Err()
			}
		}
	})
}
