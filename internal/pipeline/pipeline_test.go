package pipeline

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func TestProduceTransformSink(t *testing.T) {
	g, _ := WithContext(context.Background())
	nums := Produce(g, 4, func(emit func(int) bool) error {
		for i := 1; i <= 100; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	})
	doubled := Transform(g, 4, 4, nums, func(v int) (int, error) { return v * 2, nil })
	var got []int
	var mu atomic.Int64
	Sink(g, doubled, func(v int) error {
		got = append(got, v)
		mu.Add(int64(v))
		return nil
	})
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d items, want 100", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != 2*(i+1) {
			t.Fatalf("item %d = %d, want %d", i, v, 2*(i+1))
		}
	}
}

func TestOrderPreservedWithOneWorker(t *testing.T) {
	g, _ := WithContext(context.Background())
	in := Produce(g, 0, func(emit func(int) bool) error {
		for i := 0; i < 50; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	})
	out := Transform(g, 1, 0, in, func(v int) (int, error) { return v, nil })
	var got []int
	Sink(g, out, func(v int) error { got = append(got, v); return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestErrorCancelsPipeline(t *testing.T) {
	boom := errors.New("boom")
	g, ctx := WithContext(context.Background())
	in := Produce(g, 0, func(emit func(int) bool) error {
		for i := 0; ; i++ {
			if !emit(i) {
				return nil // cancelled, exit cleanly
			}
		}
	})
	out := Transform(g, 2, 0, in, func(v int) (int, error) {
		if v == 10 {
			return 0, boom
		}
		return v, nil
	})
	Sink(g, out, func(int) error { return nil })
	err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("context not cancelled after error")
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	bad := errors.New("sink failed")
	g, _ := WithContext(context.Background())
	in := Produce(g, 0, func(emit func(int) bool) error {
		for i := 0; i < 100; i++ {
			if !emit(i) {
				return nil
			}
		}
		return nil
	})
	Sink(g, in, func(v int) error {
		if v == 5 {
			return bad
		}
		return nil
	})
	if err := g.Wait(); !errors.Is(err, bad) {
		t.Fatalf("Wait = %v, want sink error", err)
	}
}

func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g, _ := WithContext(ctx)
	started := make(chan struct{})
	in := Produce(g, 0, func(emit func(int) bool) error {
		close(started)
		for i := 0; ; i++ {
			if !emit(i) {
				return nil
			}
		}
	})
	Sink(g, in, func(int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	<-started
	cancel()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not shut down after cancellation")
	}
}

func TestFirstErrorWins(t *testing.T) {
	first := errors.New("first")
	g, _ := WithContext(context.Background())
	release := make(chan struct{})
	g.Go(func() error { return first })
	g.Go(func() error { <-release; return errors.New("second") })
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := g.Wait(); !errors.Is(err, first) {
		t.Fatalf("Wait = %v, want first", err)
	}
}

func TestEmptyGroup(t *testing.T) {
	g, _ := WithContext(context.Background())
	if err := g.Wait(); err != nil {
		t.Fatalf("empty group Wait = %v", err)
	}
}

func TestTransformDefaultsToOneWorker(t *testing.T) {
	g, _ := WithContext(context.Background())
	in := Produce(g, 0, func(emit func(int) bool) error {
		emit(1)
		emit(2)
		return nil
	})
	out := Transform(g, 0, 0, in, func(v int) (int, error) { return v, nil })
	count := 0
	Sink(g, out, func(int) error { count++; return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

// TestTransformDrainsInputOnEarlyError pins the drain guarantee: when a
// worker fails mid-stream, a producer that is not context-aware (a raw
// channel writer, unlike Produce's emit) must still be able to push its
// remaining items and close the channel instead of blocking forever on
// a send nobody will receive.
func TestTransformDrainsInputOnEarlyError(t *testing.T) {
	boom := errors.New("boom")
	g, _ := WithContext(context.Background())
	in := make(chan int) // unbuffered: the producer blocks on every send
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		defer close(in)
		for i := 0; i < 1000; i++ {
			in <- i // not ctx-aware on purpose
		}
	}()
	out := Transform(g, 2, 1, in, func(v int) (int, error) {
		if v == 5 {
			return 0, boom
		}
		return v, nil
	})
	Sink(g, out, func(int) error { return nil })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
	select {
	case <-producerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("producer still blocked after pipeline error: Transform did not drain its input")
	}
}
