package recipe

import (
	"testing"

	"hidestore/internal/fp"
)

// FuzzUnmarshalBinary hardens the recipe decoder against arbitrary bytes:
// no panics, and accepted inputs round-trip exactly.
func FuzzUnmarshalBinary(f *testing.F) {
	r := New(7)
	r.Append(fp.Of([]byte("a")), 4096, 3)
	r.Append(fp.Of([]byte("b")), 2048, -2)
	r.Append(fp.Of([]byte("c")), 1024, 0)
	seed, err := r.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted recipe failed to marshal: %v", err)
		}
		back, err := UnmarshalBinary(again)
		if err != nil {
			t.Fatalf("re-encoded recipe failed to decode: %v", err)
		}
		if back.Version != got.Version || len(back.Entries) != len(got.Entries) {
			t.Fatal("round trip changed shape")
		}
		for i := range got.Entries {
			if back.Entries[i] != got.Entries[i] {
				t.Fatalf("entry %d changed", i)
			}
		}
	})
}
