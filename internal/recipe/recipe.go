// Package recipe implements backup recipes: the per-version chunk lists
// that record how to reassemble a backup stream from stored chunks.
//
// Each recipe entry is 28 bytes (§2.1): a 20-byte fingerprint, a 4-byte
// chunk size, and a 4-byte container ID (CID). In traditional systems the
// CID is always the (positive) ID of the container holding the chunk.
// HiDeStore (§4.3, Figure 7) extends the CID with two more cases:
//
//   - CID == 0: the chunk still lives in the *active* containers; its exact
//     location is resolved through the engine's fingerprint cache.
//   - CID > 0: the chunk lives in archival container CID.
//   - CID < 0: the chunk's location is recorded in a *newer* recipe; -CID
//     is the version number whose recipe should be consulted. Recipes thus
//     form a chain that Algorithm 1 flattens offline.
package recipe

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hidestore/internal/fp"
)

// Recipe errors.
var (
	ErrNotFound = errors.New("recipe: not found")
	ErrCorrupt  = errors.New("recipe: corrupt encoding")
)

// EntrySize is the on-disk size of one recipe entry in bytes.
const EntrySize = fp.Size + 4 + 4

// Entry describes one chunk of a backup stream.
type Entry struct {
	FP   fp.FP
	Size uint32
	// CID locates the chunk; see the package comment for the three cases.
	CID int32
}

// InActive reports whether the chunk is recorded as living in active
// containers (HiDeStore semantics).
func (e Entry) InActive() bool { return e.CID == 0 }

// InArchive reports whether the chunk is recorded in an archival container.
func (e Entry) InArchive() bool { return e.CID > 0 }

// Forward returns the version number of the newer recipe holding this
// chunk's location, and whether the entry is such a forward reference.
func (e Entry) Forward() (int, bool) {
	if e.CID < 0 {
		return int(-e.CID), true
	}
	return 0, false
}

// Recipe is the chunk list of one backup version.
type Recipe struct {
	// Version is the backup version number, starting at 1.
	Version int
	// Entries lists the stream's chunks in order.
	Entries []Entry
}

// New creates an empty recipe for a version.
func New(version int) *Recipe {
	return &Recipe{Version: version}
}

// Append adds one chunk reference.
func (r *Recipe) Append(f fp.FP, size uint32, cid int32) {
	r.Entries = append(r.Entries, Entry{FP: f, Size: size, CID: cid})
}

// NumChunks returns the number of chunk references.
func (r *Recipe) NumChunks() int { return len(r.Entries) }

// TotalBytes returns the logical (pre-dedup) size of the version.
func (r *Recipe) TotalBytes() uint64 {
	var total uint64
	for _, e := range r.Entries {
		total += uint64(e.Size)
	}
	return total
}

// SizeBytes returns the serialized metadata size (28 bytes per entry),
// the figure used for recipe-overhead accounting.
func (r *Recipe) SizeBytes() int { return len(r.Entries) * EntrySize }

// UniqueContainers returns how many distinct archival containers the
// recipe references (entries with CID > 0). This is the denominator of the
// optimal speed factor.
func (r *Recipe) UniqueContainers() int {
	seen := make(map[int32]struct{})
	for _, e := range r.Entries {
		if e.CID > 0 {
			seen[e.CID] = struct{}{}
		}
	}
	return len(seen)
}

// Clone returns a deep copy.
func (r *Recipe) Clone() *Recipe {
	return &Recipe{Version: r.Version, Entries: append([]Entry(nil), r.Entries...)}
}

const (
	_magic         = 0x48445250 // "HDRP"
	_formatVersion = 1
	_headerSize    = 4 + 2 + 2 + 4 + 4 + 4 // magic, ver, pad, version, count, crc
)

// MarshalBinary encodes the recipe as:
//
//	magic u32 | fmtver u16 | pad u16 | version u32 | count u32 | crc u32 |
//	count×(fp[20] | size u32 | cid i32)
func (r *Recipe) MarshalBinary() ([]byte, error) {
	if r.Version < 0 {
		return nil, fmt.Errorf("recipe: negative version %d", r.Version)
	}
	buf := make([]byte, _headerSize+len(r.Entries)*EntrySize)
	binary.BigEndian.PutUint32(buf[0:], _magic)
	binary.BigEndian.PutUint16(buf[4:], _formatVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(r.Version))
	binary.BigEndian.PutUint32(buf[12:], uint32(len(r.Entries)))
	off := _headerSize
	for _, e := range r.Entries {
		copy(buf[off:], e.FP[:])
		binary.BigEndian.PutUint32(buf[off+fp.Size:], e.Size)
		binary.BigEndian.PutUint32(buf[off+fp.Size+4:], uint32(e.CID))
		off += EntrySize
	}
	binary.BigEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[_headerSize:]))
	return buf, nil
}

// UnmarshalBinary decodes a recipe encoded by MarshalBinary.
func UnmarshalBinary(buf []byte) (*Recipe, error) {
	if len(buf) < _headerSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(buf))
	}
	if binary.BigEndian.Uint32(buf[0:]) != _magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(buf[4:]); v != _formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	version := int(binary.BigEndian.Uint32(buf[8:]))
	count := int(binary.BigEndian.Uint32(buf[12:]))
	wantCRC := binary.BigEndian.Uint32(buf[16:])
	if len(buf) != _headerSize+count*EntrySize {
		return nil, fmt.Errorf("%w: length %d for %d entries", ErrCorrupt, len(buf), count)
	}
	if crc32.ChecksumIEEE(buf[_headerSize:]) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &Recipe{Version: version, Entries: make([]Entry, 0, count)}
	off := _headerSize
	for i := 0; i < count; i++ {
		f, err := fp.FromBytes(buf[off : off+fp.Size])
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		size := binary.BigEndian.Uint32(buf[off+fp.Size:])
		cid := int32(binary.BigEndian.Uint32(buf[off+fp.Size+4:]))
		r.Entries = append(r.Entries, Entry{FP: f, Size: size, CID: cid})
		off += EntrySize
	}
	return r, nil
}
