package recipe

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"testing/quick"

	"hidestore/internal/durable"
	"hidestore/internal/fp"
)

func sampleRecipe(version, n int) *Recipe {
	r := New(version)
	rng := rand.New(rand.NewSource(int64(version)))
	for i := 0; i < n; i++ {
		f := fp.Of([]byte("v" + strconv.Itoa(version) + "-c" + strconv.Itoa(i)))
		cid := int32(rng.Intn(21) - 10) // mix of negative, zero, positive
		r.Append(f, uint32(1000+rng.Intn(4000)), cid)
	}
	return r
}

func TestEntryKinds(t *testing.T) {
	tests := []struct {
		name      string
		cid       int32
		inActive  bool
		inArchive bool
		fwd       int
		isFwd     bool
	}{
		{"active", 0, true, false, 0, false},
		{"archive", 7, false, true, 0, false},
		{"forward", -4, false, false, 4, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := Entry{CID: tt.cid}
			if e.InActive() != tt.inActive {
				t.Errorf("InActive = %v", e.InActive())
			}
			if e.InArchive() != tt.inArchive {
				t.Errorf("InArchive = %v", e.InArchive())
			}
			fwd, ok := e.Forward()
			if fwd != tt.fwd || ok != tt.isFwd {
				t.Errorf("Forward = %d,%v want %d,%v", fwd, ok, tt.fwd, tt.isFwd)
			}
		})
	}
}

func TestAccounting(t *testing.T) {
	r := New(1)
	r.Append(fp.Of([]byte("a")), 100, 1)
	r.Append(fp.Of([]byte("b")), 200, 1)
	r.Append(fp.Of([]byte("c")), 300, 2)
	r.Append(fp.Of([]byte("d")), 400, 0)
	r.Append(fp.Of([]byte("e")), 500, -3)
	if r.NumChunks() != 5 {
		t.Fatalf("NumChunks = %d", r.NumChunks())
	}
	if r.TotalBytes() != 1500 {
		t.Fatalf("TotalBytes = %d", r.TotalBytes())
	}
	if r.SizeBytes() != 5*EntrySize {
		t.Fatalf("SizeBytes = %d", r.SizeBytes())
	}
	if r.UniqueContainers() != 2 {
		t.Fatalf("UniqueContainers = %d, want 2", r.UniqueContainers())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := sampleRecipe(9, 500)
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != r.Version || len(got.Entries) != len(r.Entries) {
		t.Fatalf("header mismatch: v%d/%d entries", got.Version, len(got.Entries))
	}
	for i := range r.Entries {
		if got.Entries[i] != r.Entries[i] {
			t.Fatalf("entry %d mismatch: %+v != %+v", i, got.Entries[i], r.Entries[i])
		}
	}
}

func TestMarshalEmpty(t *testing.T) {
	r := New(1)
	buf, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.NumChunks() != 0 {
		t.Fatal("empty recipe round trip failed")
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	buf, err := sampleRecipe(2, 10).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:8] }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad magic", func(b []byte) []byte { b[1] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[5] = 9; return b }},
		{"bitflip", func(b []byte) []byte { b[len(b)-2] ^= 0x10; return b }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := UnmarshalBinary(tt.mutate(append([]byte(nil), buf...))); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(version uint16, sizes []uint16, cids []int16) bool {
		r := New(int(version) + 1)
		for i, sz := range sizes {
			cid := int32(0)
			if i < len(cids) {
				cid = int32(cids[i])
			}
			r.Append(fp.Of([]byte{byte(i), byte(i >> 8)}), uint32(sz), cid)
		}
		buf, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := UnmarshalBinary(buf)
		if err != nil || got.Version != r.Version || len(got.Entries) != len(r.Entries) {
			return false
		}
		for i := range r.Entries {
			if got.Entries[i] != r.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := sampleRecipe(1, 3)
	cl := r.Clone()
	cl.Entries[0].CID = 999
	if r.Entries[0].CID == 999 {
		t.Fatal("Clone shares entry storage")
	}
}

func storesUnderTest(t *testing.T) map[string]Store {
	t.Helper()
	f, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMemStore(), "file": f}
}

func TestStoreCRUD(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			r := sampleRecipe(3, 20)
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
			if has, err := s.Has(3); err != nil || !has {
				t.Fatalf("Has(3) = %v, %v", has, err)
			}
			if has, err := s.Has(4); err != nil || has {
				t.Fatalf("Has(4) = %v, %v", has, err)
			}
			got, err := s.Get(3)
			if err != nil {
				t.Fatal(err)
			}
			if got.Version != 3 || got.NumChunks() != 20 {
				t.Fatal("Get returned wrong recipe")
			}
			if _, err := s.Get(99); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: %v", err)
			}
			if err := s.Delete(3); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(3); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete: %v", err)
			}
		})
	}
}

func TestStoreVersionsSorted(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for _, v := range []int{4, 1, 2} {
				if err := s.Put(sampleRecipe(v, 2)); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Versions()
			if err != nil {
				t.Fatal(err)
			}
			want := []int{1, 2, 4}
			if len(got) != len(want) {
				t.Fatalf("Versions = %v", got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Versions = %v, want %v", got, want)
				}
			}
			if n, err := s.Len(); err != nil || n != 3 {
				t.Fatalf("Len = %d, %v", n, err)
			}
		})
	}
}

func TestStorePutValidation(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put(nil); err == nil {
				t.Fatal("Put(nil) should fail")
			}
			if err := s.Put(New(0)); err == nil {
				t.Fatal("Put(version 0) should fail")
			}
			if err := s.Put(New(-1)); err == nil {
				t.Fatal("Put(negative version) should fail")
			}
		})
	}
}

func TestMemStoreGetIsolation(t *testing.T) {
	s := NewMemStore()
	r := sampleRecipe(1, 3)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	got.Entries[0].CID = 12345
	again, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Entries[0].CID == 12345 {
		t.Fatal("mutating a Get result leaked into the store")
	}
}

func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(sampleRecipe(5, 7)); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChunks() != 7 {
		t.Fatal("recipe not persisted")
	}
}

// TestFileStoreSweepsTempsAtOpen: stale tmp-* debris a crashed writer
// left behind is removed when the store is reopened; committed recipes
// are untouched.
func TestFileStoreSweepsTempsAtOpen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(sampleRecipe(1, 3)); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, durable.TempPrefix+"654321")
	if err := os.WriteFile(stale, []byte("half a recipe"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived reopen: %v", err)
	}
	if has, err := s2.Has(1); err != nil || !has {
		t.Fatalf("committed recipe lost by the sweep: %v, %v", has, err)
	}
}

// TestFileStoreErrorsSurface: when the store directory itself is
// unreadable, Has/Versions/Len report the failure instead of reading
// as "absent"/"empty". (The directory is replaced with a regular file;
// chmod tricks don't work when the suite runs as root.)
func TestFileStoreErrorsSurface(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "recipes")
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(sampleRecipe(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Has(1); err == nil {
		t.Fatal("Has() on an unreadable store dir returned nil error")
	}
	if _, err := s.Versions(); err == nil {
		t.Fatal("Versions() on an unreadable store dir returned nil error")
	}
	if _, err := s.Len(); err == nil {
		t.Fatal("Len() on an unreadable store dir returned nil error")
	}
}
