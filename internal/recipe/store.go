package recipe

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hidestore/internal/durable"
)

// Store persists recipes keyed by version number. Implementations must be
// safe for concurrent use. Put transfers ownership; Get returns a recipe
// the caller may mutate only if it re-Puts it afterwards (the memory store
// hands back a private copy, the file store a fresh decode).
type Store interface {
	Put(r *Recipe) error
	Get(version int) (*Recipe, error)
	Delete(version int) error
	// Has reports whether the version exists; the error is non-nil only
	// when existence could not be determined (an I/O failure).
	Has(version int) (bool, error)
	// Versions returns stored version numbers in ascending order, or
	// the error that prevented enumerating them — recovery and GC
	// delete containers based on this list, so a silently empty answer
	// from an unreadable directory would be catastrophic.
	Versions() ([]int, error)
	Len() (int, error)
}

// MemStore is an in-memory recipe store.
type MemStore struct {
	mu      sync.Mutex
	recipes map[int]*Recipe
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recipes: make(map[int]*Recipe)}
}

// Put implements Store.
func (s *MemStore) Put(r *Recipe) error {
	if r == nil {
		return fmt.Errorf("recipe: Put nil recipe")
	}
	if r.Version <= 0 {
		return fmt.Errorf("recipe: Put version %d (must be positive)", r.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recipes[r.Version] = r
	return nil
}

// Get implements Store. The returned recipe is a deep copy so callers can
// mutate it (e.g. the recipe-update algorithm) and re-Put.
func (s *MemStore) Get(version int) (*Recipe, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recipes[version]
	if !ok {
		return nil, fmt.Errorf("%w: version %d", ErrNotFound, version)
	}
	return r.Clone(), nil
}

// Delete implements Store.
func (s *MemStore) Delete(version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recipes[version]; !ok {
		return fmt.Errorf("%w: version %d", ErrNotFound, version)
	}
	delete(s.recipes, version)
	return nil
}

// Has implements Store.
func (s *MemStore) Has(version int) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.recipes[version]
	return ok, nil
}

// Versions implements Store.
func (s *MemStore) Versions() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.recipes))
	for v := range s.recipes {
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

// Len implements Store.
func (s *MemStore) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recipes), nil
}

// FileStore is a recipe store backed by one file per version (r_<n>.rcp),
// written durably via temp file + fsync + rename + directory fsync.
type FileStore struct {
	dir string
}

var _ Store = (*FileStore)(nil)

const _fileExt = ".rcp"

// NewFileStore opens (creating if needed) a file-backed store at dir,
// sweeping any stale tmp-* files a crashed writer left behind.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recipe: create store dir: %w", err)
	}
	if _, err := durable.SweepTemp(dir); err != nil {
		return nil, fmt.Errorf("recipe: sweep stale temp files: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

func (s *FileStore) path(version int) string {
	return filepath.Join(s.dir, "r_"+strconv.Itoa(version)+_fileExt)
}

// Path returns the on-disk path of a version's recipe. Exported for
// fault injection and forensics tooling; normal clients go through
// Store.
func (s *FileStore) Path(version int) string { return s.path(version) }

// Put implements Store.
func (s *FileStore) Put(r *Recipe) error {
	if r == nil {
		return fmt.Errorf("recipe: Put nil recipe")
	}
	if r.Version <= 0 {
		return fmt.Errorf("recipe: Put version %d (must be positive)", r.Version)
	}
	buf, err := r.MarshalBinary()
	if err != nil {
		return fmt.Errorf("recipe: marshal v%d: %w", r.Version, err)
	}
	if err := durable.WriteFileAtomic(s.path(r.Version), buf, 0o644); err != nil {
		return fmt.Errorf("recipe: put v%d: %w", r.Version, err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(version int) (*Recipe, error) {
	buf, err := os.ReadFile(s.path(version))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: version %d", ErrNotFound, version)
		}
		return nil, fmt.Errorf("recipe: read v%d: %w", version, err)
	}
	r, err := UnmarshalBinary(buf)
	if err != nil {
		return nil, fmt.Errorf("recipe v%d: %w", version, err)
	}
	return r, nil
}

// Delete implements Store. The removal is fsynced: the engines delete
// the recipe before reclaiming its containers, and that ordering only
// protects against crashes if the recipe cannot reappear.
func (s *FileStore) Delete(version int) error {
	err := durable.Remove(s.path(version))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: version %d", ErrNotFound, version)
		}
		return fmt.Errorf("recipe: delete v%d: %w", version, err)
	}
	return nil
}

// Has implements Store. A stat failure other than not-exist surfaces
// instead of reading as "absent".
func (s *FileStore) Has(version int) (bool, error) {
	_, err := os.Stat(s.path(version))
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, fs.ErrNotExist):
		return false, nil
	default:
		return false, fmt.Errorf("recipe: stat v%d: %w", version, err)
	}
}

// Versions implements Store.
func (s *FileStore) Versions() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("recipe: list store dir: %w", err)
	}
	out := make([]int, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "r_") || !strings.HasSuffix(name, _fileExt) {
			continue
		}
		n, err := strconv.Atoi(name[2 : len(name)-len(_fileExt)])
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// Len implements Store.
func (s *FileStore) Len() (int, error) {
	versions, err := s.Versions()
	if err != nil {
		return 0, err
	}
	return len(versions), nil
}
