package restorecache

import (
	"context"
	"fmt"
	"io"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/lru"
	"hidestore/internal/recipe"
)

// Options configures ALACC.
type Options struct {
	// AreaBytes is the forward assembly area size (default 32 MB).
	AreaBytes int
	// CacheBytes is the chunk cache budget (default 32 MB).
	CacheBytes int64
	// LookAheadBytes is how far past the current area the look-ahead
	// window extends (default 64 MB).
	LookAheadBytes int
	// Adaptive enables shifting budget between the assembly area and the
	// chunk cache based on observed hit rates (default true; set
	// DisableAdaptive to turn off).
	DisableAdaptive bool
}

func (o *Options) setDefaults() {
	if o.AreaBytes <= 0 {
		o.AreaBytes = 32 << 20
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = 32 << 20
	}
	if o.LookAheadBytes <= 0 {
		o.LookAheadBytes = 64 << 20
	}
}

// ALACC implements Adaptive Look-Ahead Chunk Caching (Cao et al.,
// FAST'18), the strongest restore baseline in the paper's evaluation
// (§5.3). It extends FAA in two ways:
//
//  1. a chunk cache holds chunks from previously fetched containers, so an
//     area can be partially assembled without re-reading containers; and
//  2. a look-ahead window past the current area decides *which* chunks of
//     a fetched container deserve caching — only chunks referenced again
//     within the window are kept, so the budget is not wasted on dead
//     chunks (the fragmentation problem makes most chunks dead weight).
//
// The adaptive part rebalances bytes between the assembly area and the
// chunk cache: frequent cache hits grow the cache, scarce hits grow the
// area. This reproduces the published design at the level of fidelity the
// paper's own re-implementation used.
type ALACC struct {
	opts Options
}

var _ Cache = (*ALACC)(nil)

// NewALACC returns an ALACC restorer.
func NewALACC(opts Options) *ALACC {
	opts.setDefaults()
	return &ALACC{opts: opts}
}

// Name implements Cache.
func (a *ALACC) Name() string { return "alacc" }

// Restore implements Cache.
func (a *ALACC) Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error) {
	var stats Stats
	if err := validate(entries); err != nil {
		return stats, err
	}
	counted := &countingFetcher{inner: fetch, stats: &stats}
	asm := newAssembler(w, &stats)
	err := a.restore(ctx, entries, counted, &stats, asm)
	err = asm.finish(err)
	return stats, err
}

// restore keeps ALACC's two-pass area structure — all of an area's
// cache lookups strictly precede its fetches and insertions, so the
// cache's recency state and the fetch sequence are identical to the
// buffered implementation — but defers the chunk copies: pass 1
// records hit payloads, pass 2 fetches and cache-inserts, and a final
// walk emits the area in stream order through the assembler.
func (a *ALACC) restore(ctx context.Context, entries []recipe.Entry, counted Fetcher, stats *Stats, asm assembler) error {
	cache, err := lru.New[fp.FP, []byte](a.opts.CacheBytes)
	if err != nil {
		return err
	}
	areaBytes := a.opts.AreaBytes
	pos := 0
	var areaHits, areaMisses uint64
	for pos < len(entries) {
		slots := carveArea(entries, &pos, areaBytes)

		// Build the look-ahead reference set: fingerprints needed within
		// LookAheadBytes after the area.
		lookahead := make(map[fp.FP]struct{})
		la := 0
		for i := pos; i < len(entries) && la < a.opts.LookAheadBytes; i++ {
			lookahead[entries[i].FP] = struct{}{}
			la += int(entries[i].Size)
		}

		// Pass 1: serve slots from the chunk cache.
		hit := make([]bool, len(slots))
		fill := make([][]byte, len(slots))
		unfilled := make(map[container.ID][]int)
		order := make([]container.ID, 0, 8)
		for i, e := range slots {
			if data, ok := cache.Get(e.FP); ok {
				hit[i], fill[i] = true, data
				stats.CacheHits++
				stats.Chunks++
				areaHits++
				continue
			}
			areaMisses++
			id := container.ID(e.CID)
			if _, seen := unfilled[id]; !seen {
				order = append(order, id)
			}
			unfilled[id] = append(unfilled[id], i)
		}
		// Pass 2: one read per remaining container.
		ctns := make(map[container.ID]*container.Container, len(order))
		for _, id := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			ctn, err := counted.Get(ctx, id)
			if err != nil {
				return err
			}
			ctns[id] = ctn
			needed := make(map[fp.FP]struct{}, len(unfilled[id]))
			for _, i := range unfilled[id] {
				needed[slots[i].FP] = struct{}{}
			}
			stats.CacheHits += uint64(len(unfilled[id]) - 1)
			stats.Chunks += uint64(len(unfilled[id]))
			// Look-ahead insertion: cache only the fetched container's
			// chunks that the window will need again.
			for _, f := range ctn.Fingerprints() {
				if _, usedNow := needed[f]; usedNow {
					// Chunks used in this area are also re-cached if the
					// window references them again.
					if _, again := lookahead[f]; !again {
						continue
					}
				} else if _, again := lookahead[f]; !again {
					continue
				}
				data, err := ctn.Get(f)
				if err != nil {
					return fmt.Errorf("restore: container %d: %w", id, err)
				}
				cache.Add(f, data, int64(len(data)))
			}
		}
		// Emission: the area in stream order, cache hits and fetched
		// containers interleaved.
		for i, e := range slots {
			var err error
			if hit[i] {
				err = asm.cached(fill[i], e)
			} else {
				err = asm.chunk(ctns[container.ID(e.CID)], e)
			}
			if err != nil {
				return err
			}
		}

		// Adaptation: rebalance area vs cache budget every area using the
		// observed hit ratio.
		if !a.opts.DisableAdaptive && areaHits+areaMisses > 0 {
			hitRate := float64(areaHits) / float64(areaHits+areaMisses)
			const step = 4 << 20
			minBytes := a.opts.AreaBytes / 4
			switch {
			case hitRate > 0.5 && areaBytes-step >= minBytes:
				// The cache is earning: shift budget toward it.
				areaBytes -= step
			case hitRate < 0.1 && int(cache.Capacity())-step >= int(a.opts.CacheBytes)/4:
				// The cache is idle: grow the assembly area instead.
				areaBytes += step
			}
			areaHits, areaMisses = 0, 0
		}
	}
	return nil
}
