package restorecache

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hidestore/internal/container"
	"hidestore/internal/obs"
	"hidestore/internal/recipe"
)

// spanTargetBytes is the assembly span granularity: policies emit copy
// instructions in stream order, the assembler batches them into spans
// of roughly this many payload bytes, and each span becomes one Write
// on the destination (and, in parallel mode, one unit of worker work —
// large enough to amortize handoff, small enough that the reorder
// window stays a few megabytes).
const spanTargetBytes = 1 << 20

// assemblyOp is one pending copy instruction: either "copy chunk e out
// of src" (src != nil) or "the payload is already in hand" (a chunk
// cache hit). Holding the *container.Container rather than copied
// bytes is what lets the copy itself move off the policy goroutine;
// containers are immutable while a restore runs, so concurrent Gets
// from span workers are safe.
type assemblyOp struct {
	src  *container.Container
	data []byte
	e    recipe.Entry
}

// assembler receives a restore's chunk sequence in stream order and
// materializes it on the destination writer. The split keeps the cache
// policy the single decision-maker — which container to fetch, what to
// cache — while the byte movement becomes a pluggable stage: serial
// (inline copies, as before) or parallel (a worker pool filling spans
// out of order behind an in-order reorder window).
//
// The policy must call finish exactly once — with its error, or nil on
// success — and must not use the assembler afterwards. finish returns
// the error the restore should report; the assembler owns the
// destination writes and Stats.BytesRestored on every path.
type assembler interface {
	// chunk schedules chunk e to be copied out of src.
	chunk(src *container.Container, e recipe.Entry) error
	// cached schedules an already-materialized payload (a chunk cache
	// hit). data must stay immutable until finish returns.
	cached(data []byte, e recipe.Entry) error
	// finish flushes (err == nil) or discards pending work, stops any
	// workers, and returns the restore's error.
	finish(err error) error
}

// newAssembler selects the assembly stage for w: a *ParallelWriter
// with Workers > 1 gets the out-of-order pool, anything else the
// inline serial path.
func newAssembler(w io.Writer, stats *Stats) assembler {
	if pw, ok := w.(*ParallelWriter); ok && pw.opts.Workers > 1 {
		return newParallelAssembler(pw, stats)
	}
	return &serialAssembler{w: w, stats: stats}
}

// copyChunk materializes one chunk instruction, enforcing the recipe's
// size so a corrupt payload cannot silently shift every later byte.
func copyChunk(src *container.Container, e recipe.Entry) ([]byte, error) {
	data, err := src.Get(e.FP)
	if err != nil {
		return nil, fmt.Errorf("restore: container %d: %w", src.ID(), err)
	}
	if len(data) != int(e.Size) {
		return nil, fmt.Errorf("restore: chunk %s size %d, recipe says %d",
			e.FP.Short(), len(data), e.Size)
	}
	return data, nil
}

// serialAssembler copies inline on the policy goroutine and batches
// output into span-sized Writes.
type serialAssembler struct {
	w     io.Writer
	stats *Stats
	buf   []byte
}

func (s *serialAssembler) chunk(src *container.Container, e recipe.Entry) error {
	data, err := copyChunk(src, e)
	if err != nil {
		return err
	}
	return s.append(data)
}

func (s *serialAssembler) cached(data []byte, _ recipe.Entry) error {
	return s.append(data)
}

func (s *serialAssembler) append(data []byte) error {
	s.buf = append(s.buf, data...)
	if len(s.buf) >= spanTargetBytes {
		return s.flush()
	}
	return nil
}

func (s *serialAssembler) flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	if _, err := s.w.Write(s.buf); err != nil {
		return fmt.Errorf("restore: write: %w", err)
	}
	s.stats.BytesRestored += uint64(len(s.buf))
	s.buf = s.buf[:0]
	return nil
}

func (s *serialAssembler) finish(err error) error {
	if err != nil {
		return err
	}
	return s.flush()
}

// ParallelOptions configures a ParallelWriter.
type ParallelOptions struct {
	// Workers is the number of span-assembly goroutines; values below 2
	// keep assembly inline (serial).
	Workers int
	// Metrics, when set, exposes the pool's occupancy, span count and
	// the writer's in-order stall latency.
	Metrics *obs.RestoreMetrics
	// Tracer and Span, when set, mirror each writer stall as an
	// "assembly.stall" trace record under Span (the restore span), so
	// offline reports can attribute reorder-window time: how long the
	// in-order writer sat blocked while out-of-order spans waited. The
	// writer goroutine is joined by finish before the restore span
	// ends, so every stall record lands inside its parent's interval.
	Tracer *obs.Tracer
	Span   *obs.Span
}

// ParallelWriter marks a restore destination as eligible for parallel
// out-of-order assembly. Policies hand their stream to newAssembler,
// which recognizes the wrapper; code that treats it as a plain
// io.Writer still restores correctly (Write passes through), so the
// wrapper is always safe to install.
type ParallelWriter struct {
	w    io.Writer
	opts ParallelOptions
}

// NewParallelWriter wraps w for parallel assembly with opts.
func NewParallelWriter(w io.Writer, opts ParallelOptions) *ParallelWriter {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	return &ParallelWriter{w: w, opts: opts}
}

// Write implements io.Writer by passing through.
func (p *ParallelWriter) Write(b []byte) (int, error) { return p.w.Write(b) }

// errAssemblyAborted tells the policy the writer already failed, so
// fetching further containers is pointless; finish maps it back to the
// writer's real error.
var errAssemblyAborted = errors.New("restorecache: assembly aborted")

// spanItem is one span moving through the pool: ops in, buf out. seq
// is its position in the stream; the writer only releases spans in seq
// order, so the output is byte-identical to serial assembly no matter
// how workers interleave.
type spanItem struct {
	seq  int
	ops  []assemblyOp
	size int
	buf  []byte
	err  error
}

// parallelAssembler fans span filling out to a worker pool and merges
// the results back in order:
//
//	policy ──credit──▶ work ──▶ workers ──▶ filled ──▶ writer ──▶ w
//
// The credit semaphore bounds how many spans exist between dispatch
// and the writer's in-order release (the reorder window), mirroring
// the backup sink's credit-bounded reorder map: dispatch acquires one
// credit per span, the writer releases it after the span is written or
// discarded — on every path — so at most `window` spans (a few MB plus
// their container references) are ever in flight and dispatch
// backpressures instead of ballooning. `filled` has the window as its
// capacity, so worker hand-off never blocks and close(work) is all
// finish needs to drain the pool.
//
// Accounting is untouched by construction: workers only copy out of
// containers the policy already fetched through its counting layer —
// no code here calls a Fetcher — so worker count can never change
// which containers are read, or how often.
type parallelAssembler struct {
	pw     *ParallelWriter
	stats  *Stats
	mx     *obs.RestoreMetrics
	tracer *obs.Tracer
	span   *obs.Span

	cur     *spanItem
	seq     int
	credits chan struct{}
	work    chan *spanItem
	filled  chan *spanItem

	wg         sync.WaitGroup
	writerDone chan struct{}
	// err is the first error in stream order (a span's fill failure or
	// a destination write failure). Written only by the writer
	// goroutine; read by finish after writerDone closes.
	err     error
	aborted atomic.Bool
}

func newParallelAssembler(pw *ParallelWriter, stats *Stats) *parallelAssembler {
	workers := pw.opts.Workers
	window := 2*workers + 2
	a := &parallelAssembler{
		pw:         pw,
		stats:      stats,
		mx:         pw.opts.Metrics,
		tracer:     pw.opts.Tracer,
		span:       pw.opts.Span,
		credits:    make(chan struct{}, window),
		work:       make(chan *spanItem),
		filled:     make(chan *spanItem, window),
		writerDone: make(chan struct{}),
	}
	a.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go a.worker()
	}
	go a.writer()
	return a
}

func (a *parallelAssembler) chunk(src *container.Container, e recipe.Entry) error {
	return a.add(assemblyOp{src: src, e: e}, int(e.Size))
}

func (a *parallelAssembler) cached(data []byte, e recipe.Entry) error {
	return a.add(assemblyOp{data: data, e: e}, len(data))
}

func (a *parallelAssembler) add(o assemblyOp, size int) error {
	if a.aborted.Load() {
		return errAssemblyAborted
	}
	if a.cur == nil {
		a.cur = &spanItem{seq: a.seq}
		a.seq++
	}
	a.cur.ops = append(a.cur.ops, o)
	a.cur.size += size
	if a.cur.size >= spanTargetBytes {
		a.dispatch()
	}
	return nil
}

// dispatch hands the current span to the pool. Blocking on credits is
// deadlock-free: the writer releases one credit per span on every
// path, and the pool drains independently of the dispatcher.
func (a *parallelAssembler) dispatch() {
	it := a.cur
	a.cur = nil
	a.credits <- struct{}{}
	if a.mx != nil {
		a.mx.AssemblySpans.Inc()
	}
	a.work <- it
}

func (a *parallelAssembler) worker() {
	defer a.wg.Done()
	for it := range a.work {
		if !a.aborted.Load() {
			if a.mx != nil {
				a.mx.AssemblyWorkersBusy.Add(1)
			}
			fillSpan(it)
			if a.mx != nil {
				a.mx.AssemblyWorkersBusy.Add(-1)
			}
		}
		// After an abort the span passes through unfilled: seq must stay
		// contiguous so the writer can keep draining and releasing
		// credits. The send never blocks — filled's capacity equals the
		// credit window.
		a.filled <- it
	}
}

// fillSpan materializes a span's instructions into its buffer.
func fillSpan(it *spanItem) {
	buf := make([]byte, 0, it.size)
	for _, o := range it.ops {
		data := o.data
		if o.src != nil {
			var err error
			data, err = copyChunk(o.src, o.e)
			if err != nil {
				it.err = err
				it.ops = nil
				return
			}
		}
		buf = append(buf, data...)
	}
	it.buf = buf
	it.ops = nil // release the container references with the copy done
}

// writer drains filled spans into a reorder map and releases them to
// the destination strictly in seq order.
func (a *parallelAssembler) writer() {
	defer close(a.writerDone)
	park := make(map[int]*spanItem)
	next := 0
	for {
		// A blocking wait with parked out-of-order spans is an assembly
		// stall: the pipeline produced work but not the span the output
		// needs next.
		var stalled time.Time
		parked := len(park)
		if (a.mx != nil || a.tracer != nil) && parked > 0 {
			stalled = time.Now()
		}
		it, ok := <-a.filled
		if !ok {
			return
		}
		if !stalled.IsZero() {
			d := time.Since(stalled)
			if a.mx != nil {
				a.mx.AssemblyStallNS.Observe(uint64(d))
			}
			// One record per stall interval: offline reports sum these
			// against the restore's container.fetch time to attribute
			// where a parallel restore's wall clock went.
			a.tracer.EmitStage("assembly.stall", a.span, stalled, d,
				map[string]int64{"parked": int64(parked), "seq": int64(next)})
		}
		park[it.seq] = it
		for {
			n, ok := park[next]
			if !ok {
				break
			}
			delete(park, next)
			next++
			a.release(n)
		}
	}
}

// release writes one in-order span (or discards it after a failure)
// and returns its credit.
func (a *parallelAssembler) release(it *spanItem) {
	defer func() { <-a.credits }()
	it.ops = nil
	if a.err != nil {
		return // a prior span already failed; discard
	}
	if it.err != nil {
		a.err = it.err
		a.aborted.Store(true)
		return
	}
	if _, err := a.pw.w.Write(it.buf); err != nil {
		a.err = fmt.Errorf("restore: write: %w", err)
		a.aborted.Store(true)
		return
	}
	a.stats.BytesRestored += uint64(len(it.buf))
}

func (a *parallelAssembler) finish(err error) error {
	if err == nil && a.cur != nil {
		a.dispatch()
	}
	a.cur = nil
	close(a.work)
	a.wg.Wait()
	close(a.filled)
	<-a.writerDone
	// The writer's error is earlier in stream order than anything the
	// policy hit afterwards (and is what errAssemblyAborted stands for).
	if a.err != nil {
		return a.err
	}
	if errors.Is(err, errAssemblyAborted) {
		return nil // unreachable: aborted implies a.err != nil
	}
	return err
}
