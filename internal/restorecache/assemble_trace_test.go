package restorecache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hidestore/internal/obs"
)

// TestWriterStallEmitsTraceRecord drives the parallel writer's reorder
// window directly: delivering span seq 1 before seq 0 parks it, and the
// blocking wait for seq 0 is a stall. Exactly one "assembly.stall"
// record must land in the trace, carrying the parked count and the
// sequence the writer was waiting for — and the tracer must stay
// balanced (the record is a stage emit, not an open span).
func TestWriterStallEmitsTraceRecord(t *testing.T) {
	var traceBuf bytes.Buffer
	tracer := obs.NewTracer(&traceBuf)
	restoreSpan := tracer.Start("restore", nil)

	var sink bytes.Buffer
	stats := &Stats{}
	pw := NewParallelWriter(&sink, ParallelOptions{Workers: 2, Tracer: tracer, Span: restoreSpan})
	a := newParallelAssembler(pw, stats)

	// Bypass the worker pool: take the credits dispatch would take and
	// feed the writer out of order. filled's capacity covers both sends.
	a.credits <- struct{}{}
	a.credits <- struct{}{}
	a.filled <- &spanItem{seq: 1, buf: []byte("second")}
	time.Sleep(20 * time.Millisecond) // the writer is now parked on seq 0
	a.filled <- &spanItem{seq: 0, buf: []byte("first")}
	if err := a.finish(nil); err != nil {
		t.Fatal(err)
	}
	restoreSpan.End()
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	if got := sink.String(); got != "firstsecond" {
		t.Fatalf("writer reordered output: %q", got)
	}
	var stalls []obs.TraceRecord
	var restoreID uint64
	sc := bufio.NewScanner(strings.NewReader(traceBuf.String()))
	for sc.Scan() {
		var rec obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch rec.Name {
		case "assembly.stall":
			stalls = append(stalls, rec)
		case "restore":
			restoreID = rec.ID
		case "trace.close":
			if rec.Attrs["open_spans"] != 0 {
				t.Errorf("tracer unbalanced after stall emission: %d open", rec.Attrs["open_spans"])
			}
		}
	}
	if len(stalls) != 1 {
		t.Fatalf("got %d assembly.stall records, want 1", len(stalls))
	}
	st := stalls[0]
	if st.Parent != restoreID {
		t.Errorf("stall parented to %d, want the restore span %d", st.Parent, restoreID)
	}
	if st.Attrs["parked"] != 1 || st.Attrs["seq"] != 0 {
		t.Errorf("stall attrs = %v, want parked 1 / seq 0", st.Attrs)
	}
	if st.Dur < int64(10*time.Millisecond) {
		t.Errorf("stall duration %s implausibly short", time.Duration(st.Dur))
	}
}

// TestWriterNoStallRecordWithoutTracer: with the plane off (no tracer,
// no metrics) the stall path stays dormant — no clock reads.
func TestWriterNoStallRecordWithoutTracer(t *testing.T) {
	var sink bytes.Buffer
	pw := NewParallelWriter(&sink, ParallelOptions{Workers: 2})
	a := newParallelAssembler(pw, &Stats{})
	a.credits <- struct{}{}
	a.credits <- struct{}{}
	a.filled <- &spanItem{seq: 1, buf: []byte("b")}
	a.filled <- &spanItem{seq: 0, buf: []byte("a")}
	if err := a.finish(nil); err != nil {
		t.Fatal(err)
	}
	if got := sink.String(); got != "ab" {
		t.Fatalf("output %q", got)
	}
}
