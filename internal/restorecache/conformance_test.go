package restorecache

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/recipe"
)

// The conformance suite pins the prefetch accounting invariant: for every
// cache policy, wrapping the fetcher (PrefetchFetcher at any depth,
// VerifyingFetcher) must leave the restored bytes, the policy-level
// ContainerReads, and the store-level StoreStats.Reads bit-identical to
// the plain serial fetcher. Prefetch may only change *when* reads
// happen, never *which* — otherwise it would corrupt the paper's speed
// factor metric (§5.3).

// conformanceEntries builds a reference sequence that exercises re-reads
// and cache churn: a sequential pass, an interleaved pass over the first
// half, and a revisit of the start (evicted by then for small caches).
func conformanceEntries(t *testing.T) (*container.MemStore, []recipe.Entry) {
	t.Helper()
	store, base, _ := fixture(t, 12, 16, 1024)
	rng := rand.New(rand.NewSource(42))
	entries := append([]recipe.Entry(nil), base...)
	shuffled := append([]recipe.Entry(nil), base[:len(base)/2]...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	entries = append(entries, shuffled...)
	entries = append(entries, base[:24]...)
	return store, entries
}

type fetchMode struct {
	name string
	wrap func(inner Fetcher, entries []recipe.Entry) (Fetcher, func())
}

func fetchModes() []fetchMode {
	noop := func() {}
	return []fetchMode{
		{"plain", func(inner Fetcher, _ []recipe.Entry) (Fetcher, func()) { return inner, noop }},
		{"prefetch-1", func(inner Fetcher, e []recipe.Entry) (Fetcher, func()) {
			p := NewPrefetchFetcher(inner, e, 1)
			return p, p.Close
		}},
		{"prefetch-default", func(inner Fetcher, e []recipe.Entry) (Fetcher, func()) {
			p := NewPrefetchFetcher(inner, e, 0)
			return p, p.Close
		}},
		{"prefetch-64", func(inner Fetcher, e []recipe.Entry) (Fetcher, func()) {
			p := NewPrefetchFetcher(inner, e, 64)
			return p, p.Close
		}},
		{"verifying", func(inner Fetcher, _ []recipe.Entry) (Fetcher, func()) {
			return NewVerifyingFetcher(inner), noop
		}},
		{"prefetch-verifying", func(inner Fetcher, e []recipe.Entry) (Fetcher, func()) {
			p := NewPrefetchFetcher(NewVerifyingFetcher(inner), e, 4)
			return p, p.Close
		}},
	}
}

// smallCaches stresses eviction and re-reads harder than the defaults.
func smallCaches() []Cache {
	return []Cache{
		NewContainerLRU(3),
		NewChunkLRU(48 << 10),
		NewFAA(64 << 10),
		NewALACC(Options{AreaBytes: 64 << 10, CacheBytes: 64 << 10, LookAheadBytes: 128 << 10}),
		NewOPT(3),
	}
}

func TestConformanceAcrossFetchers(t *testing.T) {
	store, entries := conformanceEntries(t)
	for _, c := range smallCaches() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			// Serial baseline: bytes, policy reads, store reads.
			store.ResetStats()
			var want bytes.Buffer
			base, err := c.Restore(context.Background(), entries, StoreFetcher(store), &want)
			if err != nil {
				t.Fatal(err)
			}
			baseReads := store.Stats().Reads
			for _, mode := range fetchModes() {
				mode := mode
				t.Run(mode.name, func(t *testing.T) {
					store.ResetStats()
					fetch, done := mode.wrap(StoreFetcher(store), entries)
					var got bytes.Buffer
					stats, err := c.Restore(context.Background(), entries, fetch, &got)
					done()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got.Bytes(), want.Bytes()) {
						t.Fatalf("restored bytes differ from serial baseline (%d vs %d bytes)",
							got.Len(), want.Len())
					}
					if stats.ContainerReads != base.ContainerReads {
						t.Fatalf("ContainerReads = %d, serial baseline = %d",
							stats.ContainerReads, base.ContainerReads)
					}
					if stats.BytesRestored != base.BytesRestored || stats.Chunks != base.Chunks {
						t.Fatalf("stats diverged: %+v vs %+v", stats, base)
					}
					if gotReads := store.Stats().Reads; gotReads != baseReads {
						t.Fatalf("StoreStats.Reads = %d, serial baseline = %d", gotReads, baseReads)
					}
				})
			}
		})
	}
}

// TestPrefetchCloseWithoutUse: a prefetcher whose Get never runs must
// not leak goroutines or issue any reads.
func TestPrefetchCloseWithoutUse(t *testing.T) {
	store, entries, _ := fixture(t, 4, 4, 256)
	p := NewPrefetchFetcher(StoreFetcher(store), entries, 8)
	p.Close()
	p.Close() // idempotent
	if reads := store.Stats().Reads; reads != 0 {
		t.Fatalf("unused prefetcher issued %d reads", reads)
	}
}

// TestPrefetchUnplannedReadsThrough: requests outside the plan (e.g. a
// policy re-read after the planned copy was consumed) hit the store
// directly.
func TestPrefetchUnplannedReadsThrough(t *testing.T) {
	store, entries, _ := fixture(t, 3, 4, 256)
	p := NewPrefetchFetcher(StoreFetcher(store), entries, 2)
	defer p.Close()
	ctx := context.Background()
	for _, id := range []container.ID{1, 2, 3} {
		if _, err := p.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	// Second request for container 2: its planned copy is consumed.
	if _, err := p.Get(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if reads := store.Stats().Reads; reads != 4 {
		t.Fatalf("store reads = %d, want 4 (3 planned + 1 read-through)", reads)
	}
}

// TestPrefetchPropagatesFetchErrors: a missing container surfaces on
// the consumer's Get, not as a hang or a swallowed error.
func TestPrefetchPropagatesFetchErrors(t *testing.T) {
	store, entries, _ := fixture(t, 2, 4, 256)
	bad := append([]recipe.Entry(nil), entries...)
	bad = append(bad, recipe.Entry{FP: bad[0].FP, Size: bad[0].Size, CID: 99})
	p := NewPrefetchFetcher(StoreFetcher(store), bad, 4)
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Get(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(ctx, 99); err == nil {
		t.Fatal("missing container should fail through the prefetcher")
	}
}

// delayFetcher adds a fixed latency to every read, simulating the disk
// seek + rotation cost of a cold container on spinning media. Unlike
// CPU-bound decode work, this latency overlaps under prefetch even on a
// single-core machine, which is the read-ahead pipeline's target case.
type delayFetcher struct {
	inner Fetcher
	delay time.Duration
}

func (d *delayFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	timer := time.NewTimer(d.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.inner.Get(ctx, id)
}

// BenchmarkPrefetchLatencyHiding measures how much per-container read
// latency the prefetch pipeline hides. With a 1ms simulated seek per
// container and a serial fetcher, the restore pays the full
// reads × 1ms; with read-ahead the seeks overlap chunk assembly and
// each other, so wall clock approaches max(assembly, reads/depth × 1ms).
func BenchmarkPrefetchLatencyHiding(b *testing.B) {
	store, entries, _ := benchFixture(b, 32, 64, 4096)
	cache := NewFAA(1 << 20)
	for _, mode := range []struct {
		name  string
		depth int
	}{
		{"serial", -1},
		{"prefetch-4", 4},
		{"prefetch-8", 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var total int64
			for _, e := range entries {
				total += int64(e.Size)
			}
			b.SetBytes(total)
			for i := 0; i < b.N; i++ {
				slow := &delayFetcher{inner: StoreFetcher(store), delay: time.Millisecond}
				fetch, done := MaybePrefetch(slow, entries, mode.depth)
				if _, err := cache.Restore(context.Background(), entries, fetch, io.Discard); err != nil {
					b.Fatal(err)
				}
				done()
			}
		})
	}
}

// benchFixture mirrors fixture for benchmarks.
func benchFixture(b *testing.B, nContainers, chunksPer, chunkSize int) (*container.MemStore, []recipe.Entry, int) {
	b.Helper()
	store := container.NewMemStore()
	rng := rand.New(rand.NewSource(11))
	var entries []recipe.Entry
	for cid := 1; cid <= nContainers; cid++ {
		ctn := container.NewWithCapacity(container.ID(cid), container.DefaultCapacity)
		for j := 0; j < chunksPer; j++ {
			data := make([]byte, chunkSize)
			rng.Read(data)
			f := fp.Of(data)
			if err := ctn.Add(f, data); err != nil {
				b.Fatal(err)
			}
			entries = append(entries, recipe.Entry{FP: f, Size: uint32(chunkSize), CID: int32(cid)})
		}
		if err := store.Put(ctn); err != nil {
			b.Fatal(err)
		}
	}
	return store, entries, nContainers
}

// slowFetcher blocks every read until release is closed, so a restore
// can be parked mid-container-read. Safe for concurrent workers.
type slowFetcher struct {
	inner     Fetcher
	startOnce sync.Once
	started   chan struct{} // closed when the first Get begins
	release   chan struct{}
}

func newSlowFetcher(inner Fetcher) *slowFetcher {
	return &slowFetcher{inner: inner, started: make(chan struct{}), release: make(chan struct{})}
}

func (s *slowFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	s.startOnce.Do(func() { close(s.started) })
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.Get(ctx, id)
}

// TestRestoreCancelsPromptly: cancelling mid-restore returns
// context.Canceled without waiting for the remaining containers, for
// every cache, with and without prefetch. The slow fetcher never
// releases, so a non-cancellable restore would hang the test.
func TestRestoreCancelsPromptly(t *testing.T) {
	store, entries, _ := fixture(t, 8, 8, 512)
	for _, c := range allCaches() {
		c := c
		for _, depth := range []int{-1, 4} {
			depth := depth
			name := c.Name() + "/serial"
			if depth > 0 {
				name = c.Name() + "/prefetch"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				slow := newSlowFetcher(StoreFetcher(store))
				fetch, done := MaybePrefetch(slow, entries, depth)
				defer done()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				errCh := make(chan error, 1)
				go func() {
					_, err := c.Restore(ctx, entries, fetch, &bytes.Buffer{})
					errCh <- err
				}()
				<-slow.started
				cancel()
				if err := <-errCh; !errors.Is(err, context.Canceled) {
					t.Fatalf("restore returned %v, want context.Canceled", err)
				}
			})
		}
	}
}
