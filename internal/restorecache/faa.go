package restorecache

import (
	"context"
	"fmt"
	"io"

	"hidestore/internal/container"
	"hidestore/internal/recipe"
)

// FAA restores through a Forward Assembly Area (Lillibridge et al.,
// FAST'13). The recipe gives perfect knowledge of the next M bytes of the
// stream, so FAA reserves an M-byte assembly buffer, groups the buffer's
// chunk slots by container, and reads each distinct container exactly once
// per area — filling every slot that container serves before moving on.
// Unlike an LRU cache, FAA never re-reads a container within an area and
// never holds chunk copies beyond the area being assembled.
type FAA struct {
	// AreaBytes is the assembly area size M (default 64 MB).
	AreaBytes int
}

var _ Cache = (*FAA)(nil)

// NewFAA returns a forward-assembly restorer; size 0 means 64 MB.
func NewFAA(areaBytes int) *FAA {
	if areaBytes <= 0 {
		areaBytes = 64 << 20
	}
	return &FAA{AreaBytes: areaBytes}
}

// Name implements Cache.
func (f *FAA) Name() string { return "faa" }

// slot is one chunk's place within the current assembly area.
type slot struct {
	offset int
	size   int
	entry  recipe.Entry
}

// Restore implements Cache.
func (f *FAA) Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error) {
	var stats Stats
	if err := validate(entries); err != nil {
		return stats, err
	}
	counted := &countingFetcher{inner: fetch, stats: &stats}
	area := make([]byte, f.AreaBytes)
	pos := 0
	for pos < len(entries) {
		// Carve the next assembly area: as many entries as fit in
		// AreaBytes (always at least one, so oversized chunks still
		// restore).
		var slots []slot
		used := 0
		for pos < len(entries) {
			size := int(entries[pos].Size)
			if len(slots) > 0 && used+size > f.AreaBytes {
				break
			}
			slots = append(slots, slot{offset: used, size: size, entry: entries[pos]})
			used += size
			pos++
		}
		if used > len(area) {
			area = make([]byte, used)
		}
		// Group the area's slots by container and fill container by
		// container: one read each.
		byContainer := make(map[container.ID][]slot)
		order := make([]container.ID, 0, 8)
		for _, s := range slots {
			id := container.ID(s.entry.CID)
			if _, seen := byContainer[id]; !seen {
				order = append(order, id)
			}
			byContainer[id] = append(byContainer[id], s)
		}
		for _, id := range order {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			ctn, err := counted.Get(ctx, id)
			if err != nil {
				return stats, err
			}
			for _, s := range byContainer[id] {
				data, err := ctn.Get(s.entry.FP)
				if err != nil {
					return stats, fmt.Errorf("restore: container %d: %w", id, err)
				}
				if len(data) != s.size {
					return stats, fmt.Errorf("restore: chunk %s size %d, recipe says %d",
						s.entry.FP.Short(), len(data), s.size)
				}
				copy(area[s.offset:], data)
			}
			// All slots beyond the first are served by the same read.
			stats.CacheHits += uint64(len(byContainer[id]) - 1)
			stats.Chunks += uint64(len(byContainer[id]))
		}
		if _, err := w.Write(area[:used]); err != nil {
			return stats, fmt.Errorf("restore: write: %w", err)
		}
		stats.BytesRestored += uint64(used)
	}
	return stats, nil
}
