package restorecache

import (
	"context"
	"io"

	"hidestore/internal/container"
	"hidestore/internal/recipe"
)

// FAA restores through a Forward Assembly Area (Lillibridge et al.,
// FAST'13). The recipe gives perfect knowledge of the next M bytes of the
// stream, so FAA reserves an M-byte assembly buffer, groups the buffer's
// chunk slots by container, and reads each distinct container exactly once
// per area — filling every slot that container serves before moving on.
// Unlike an LRU cache, FAA never re-reads a container within an area and
// never holds chunk copies beyond the area being assembled.
type FAA struct {
	// AreaBytes is the assembly area size M (default 64 MB).
	AreaBytes int
}

var _ Cache = (*FAA)(nil)

// NewFAA returns a forward-assembly restorer; size 0 means 64 MB.
func NewFAA(areaBytes int) *FAA {
	if areaBytes <= 0 {
		areaBytes = 64 << 20
	}
	return &FAA{AreaBytes: areaBytes}
}

// Name implements Cache.
func (f *FAA) Name() string { return "faa" }

// carveArea advances pos past as many entries as fit in areaBytes
// (always at least one, so oversized chunks still restore) and returns
// the carved slice.
func carveArea(entries []recipe.Entry, pos *int, areaBytes int) []recipe.Entry {
	start := *pos
	used := 0
	for *pos < len(entries) {
		size := int(entries[*pos].Size)
		if *pos > start && used+size > areaBytes {
			break
		}
		used += size
		*pos++
	}
	return entries[start:*pos]
}

// Restore implements Cache.
func (f *FAA) Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error) {
	var stats Stats
	if err := validate(entries); err != nil {
		return stats, err
	}
	counted := &countingFetcher{inner: fetch, stats: &stats}
	asm := newAssembler(w, &stats)
	err := f.restore(ctx, entries, counted, &stats, asm)
	err = asm.finish(err)
	return stats, err
}

// restore emits the stream through asm: containers are still fetched
// once per area in first-appearance order (the read sequence and its
// accounting are identical to the buffered implementation), but chunk
// copies go to the assembler in stream order instead of into a private
// area buffer, so the copy stage can run serially or in parallel.
func (f *FAA) restore(ctx context.Context, entries []recipe.Entry, counted Fetcher, stats *Stats, asm assembler) error {
	pos := 0
	for pos < len(entries) {
		slots := carveArea(entries, &pos, f.AreaBytes)
		// Per-area bookkeeping: how many slots each container serves
		// (for the hit accounting) and where its last slot sits (so the
		// fetched container is released as soon as its chunks are out).
		group := make(map[container.ID]int, 8)
		lastAt := make(map[container.ID]int, 8)
		for i, e := range slots {
			id := container.ID(e.CID)
			group[id]++
			lastAt[id] = i
		}
		ctns := make(map[container.ID]*container.Container, len(group))
		for i, e := range slots {
			if err := ctx.Err(); err != nil {
				return err
			}
			id := container.ID(e.CID)
			ctn, ok := ctns[id]
			if !ok {
				var err error
				ctn, err = counted.Get(ctx, id)
				if err != nil {
					return err
				}
				ctns[id] = ctn
				// All of this container's slots beyond the first are
				// served by the same read.
				stats.CacheHits += uint64(group[id] - 1)
				stats.Chunks += uint64(group[id])
			}
			if err := asm.chunk(ctn, e); err != nil {
				return err
			}
			if lastAt[id] == i {
				delete(ctns, id)
			}
		}
	}
	return nil
}
