package restorecache

import (
	"context"
	"fmt"
	"io"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/lru"
	"hidestore/internal/recipe"
)

// ContainerLRU restores through an LRU cache of whole containers
// (container-based caching, §2.3). Good when fragmentation is low; as
// versions accumulate and each container contributes only a few chunks to
// the stream, cached containers stop earning their keep — exactly the
// degradation the paper describes.
type ContainerLRU struct {
	// CacheContainers is the cache capacity in containers (default 32,
	// i.e. 128 MB at 4 MB containers).
	CacheContainers int
}

var _ Cache = (*ContainerLRU)(nil)

// NewContainerLRU returns a container-LRU cache; capacity 0 means the
// 32-container default.
func NewContainerLRU(capacity int) *ContainerLRU {
	if capacity <= 0 {
		capacity = 32
	}
	return &ContainerLRU{CacheContainers: capacity}
}

// Name implements Cache.
func (c *ContainerLRU) Name() string { return "container-lru" }

// Restore implements Cache.
func (c *ContainerLRU) Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error) {
	var stats Stats
	if err := validate(entries); err != nil {
		return stats, err
	}
	counted := &countingFetcher{inner: fetch, stats: &stats}
	asm := newAssembler(w, &stats)
	err := c.restore(ctx, entries, counted, &stats, asm)
	err = asm.finish(err)
	return stats, err
}

func (c *ContainerLRU) restore(ctx context.Context, entries []recipe.Entry, counted Fetcher, stats *Stats, asm assembler) error {
	cache, err := lru.New[container.ID, *container.Container](int64(c.CacheContainers))
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		id := container.ID(e.CID)
		ctn, ok := cache.Get(id)
		if ok {
			stats.CacheHits++
		} else {
			ctn, err = counted.Get(ctx, id)
			if err != nil {
				return err
			}
			cache.Add(id, ctn, 1)
		}
		if err := asm.chunk(ctn, e); err != nil {
			return err
		}
		stats.Chunks++
	}
	return nil
}

// ChunkLRU restores through a byte-budgeted LRU cache of individual
// chunks (chunk-based caching, §2.3). Fetching a container inserts all its
// chunks; unlike ContainerLRU, dead weight (chunks the stream never needs
// again) is evicted chunk-by-chunk, so the budget is used more precisely.
type ChunkLRU struct {
	// CacheBytes is the cache capacity in payload bytes (default 128 MB).
	CacheBytes int64
}

var _ Cache = (*ChunkLRU)(nil)

// NewChunkLRU returns a chunk-LRU cache; capacity 0 means the 128 MB
// default.
func NewChunkLRU(capacityBytes int64) *ChunkLRU {
	if capacityBytes <= 0 {
		capacityBytes = 128 << 20
	}
	return &ChunkLRU{CacheBytes: capacityBytes}
}

// Name implements Cache.
func (c *ChunkLRU) Name() string { return "chunk-lru" }

// Restore implements Cache.
func (c *ChunkLRU) Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error) {
	var stats Stats
	if err := validate(entries); err != nil {
		return stats, err
	}
	counted := &countingFetcher{inner: fetch, stats: &stats}
	asm := newAssembler(w, &stats)
	err := c.restore(ctx, entries, counted, &stats, asm)
	err = asm.finish(err)
	return stats, err
}

func (c *ChunkLRU) restore(ctx context.Context, entries []recipe.Entry, counted Fetcher, stats *Stats, asm assembler) error {
	cache, err := lru.New[fp.FP, []byte](c.CacheBytes)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		if data, ok := cache.Get(e.FP); ok {
			stats.CacheHits++
			if err := asm.cached(data, e); err != nil {
				return err
			}
		} else {
			ctn, err := counted.Get(ctx, container.ID(e.CID))
			if err != nil {
				return err
			}
			// Insert every chunk of the fetched container: stream
			// locality makes neighbours likely to be needed soon. A tiny
			// cache may evict them immediately, which is only a
			// performance concern — the needed chunk is already in hand.
			for _, f := range ctn.Fingerprints() {
				payload, err := ctn.Get(f)
				if err != nil {
					return fmt.Errorf("restore: container %d: %w", ctn.ID(), err)
				}
				cache.Add(f, payload, int64(len(payload)))
			}
			if err := asm.chunk(ctn, e); err != nil {
				return err
			}
		}
		stats.Chunks++
	}
	return nil
}

// OPT is Belady's optimal container cache: with the full recipe known in
// advance, it always evicts the container whose next use is farthest in
// the future. No online scheme can beat it at equal capacity, which makes
// it the yardstick for the ablation benchmarks.
type OPT struct {
	// CacheContainers is the capacity in containers (default 32).
	CacheContainers int
}

var _ Cache = (*OPT)(nil)

// NewOPT returns a clairvoyant container cache; capacity 0 means 32.
func NewOPT(capacity int) *OPT {
	if capacity <= 0 {
		capacity = 32
	}
	return &OPT{CacheContainers: capacity}
}

// Name implements Cache.
func (o *OPT) Name() string { return "opt" }

// Restore implements Cache.
func (o *OPT) Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error) {
	var stats Stats
	if err := validate(entries); err != nil {
		return stats, err
	}
	counted := &countingFetcher{inner: fetch, stats: &stats}
	asm := newAssembler(w, &stats)
	err := o.restore(ctx, entries, counted, &stats, asm)
	err = asm.finish(err)
	return stats, err
}

func (o *OPT) restore(ctx context.Context, entries []recipe.Entry, counted Fetcher, stats *Stats, asm assembler) error {
	// Precompute, for each position, the next position at which the same
	// container is used again.
	nextUse := make([]int, len(entries))
	lastSeen := make(map[container.ID]int)
	for i := len(entries) - 1; i >= 0; i-- {
		id := container.ID(entries[i].CID)
		if next, ok := lastSeen[id]; ok {
			nextUse[i] = next
		} else {
			nextUse[i] = len(entries) // never again
		}
		lastSeen[id] = i
	}
	cached := make(map[container.ID]*container.Container, o.CacheContainers)
	// future[id] is the next position at which id is needed, maintained
	// as positions advance.
	future := make(map[container.ID]int)
	for i, e := range entries {
		if err := ctx.Err(); err != nil {
			return err
		}
		id := container.ID(e.CID)
		future[id] = nextUse[i]
		ctn, ok := cached[id]
		if ok {
			stats.CacheHits++
		} else {
			var err error
			ctn, err = counted.Get(ctx, id)
			if err != nil {
				return err
			}
			if len(cached) >= o.CacheContainers {
				// Evict the container used farthest in the future.
				var victim container.ID
				farthest := -1
				for cid := range cached {
					nu, ok := future[cid]
					if !ok {
						nu = len(entries)
					}
					if nu > farthest {
						farthest = nu
						victim = cid
					}
				}
				delete(cached, victim)
			}
			cached[id] = ctn
		}
		if err := asm.chunk(ctn, e); err != nil {
			return err
		}
		stats.Chunks++
	}
	return nil
}
