package restorecache

import (
	"context"
	"time"

	"hidestore/internal/container"
	"hidestore/internal/obs"
)

// observedFetcher mirrors every policy-issued container read into the
// observability plane: one "container.fetch" span (a child of the
// restore span), the cumulative container-read counter, and the
// acquire-latency histogram.
//
// Placement is what makes the accounting identity hold by
// construction: the engines install it directly under the cache
// policy — the same position as the policy's own countingFetcher — and
// above the prefetch layer. Every successful policy-issued Get is seen
// exactly once by both, so the trace's container.fetch span count, the
// registry's hidestore_restore_container_reads_total and the run's
// Stats.ContainerReads are always equal. Failed reads are mirrored as
// "container.fetch.error" events and counted by neither.
//
// With prefetch on, the observed latency is the *acquire* latency —
// how long the policy waited for the container, which read-ahead may
// have already fetched — i.e. the latency the pipeline failed to hide.
type observedFetcher struct {
	inner  Fetcher
	mx     *obs.RestoreMetrics
	tracer *obs.Tracer
	parent *obs.Span
}

// ObserveFetcher wraps inner so every successful Get is mirrored into
// mx and tracer (either may be nil; both nil returns inner unchanged).
// parent becomes the container.fetch spans' parent.
func ObserveFetcher(inner Fetcher, mx *obs.RestoreMetrics, tracer *obs.Tracer, parent *obs.Span) Fetcher {
	if mx == nil && tracer == nil {
		return inner
	}
	return &observedFetcher{inner: inner, mx: mx, tracer: tracer, parent: parent}
}

// Get implements Fetcher.
func (o *observedFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	start := time.Now()
	c, err := o.inner.Get(ctx, id)
	if err != nil {
		// Mirror the failure as an event, not a fetch span: the policy's
		// accounting does not count failed reads either.
		o.tracer.Event("container.fetch.error", o.parent, map[string]int64{"cid": int64(id)})
		return nil, err
	}
	elapsed := time.Since(start)
	// The span is emitted only after the read succeeds (EmitStage writes
	// the same record a Start/End pair would): a failed read must leave
	// no "container.fetch" record *and* no dangling open span — the
	// trace's span count equals Stats.ContainerReads exactly, and the
	// tracer's open-span balance stays zero on every path.
	o.tracer.EmitStage("container.fetch", o.parent, start, elapsed, map[string]int64{"cid": int64(id)})
	if o.mx != nil {
		o.mx.ContainerReads.Inc()
		o.mx.ContainerFetchNS.Observe(uint64(elapsed))
	}
	return c, nil
}
