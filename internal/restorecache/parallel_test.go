package restorecache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/recipe"
)

// TestParallelConformance pins the parallel restore mode's defining
// property: for every cache policy, every worker count and every
// prefetch depth, the restored bytes AND the full accounting
// (ContainerReads, CacheHits, Chunks, BytesRestored, store-level
// reads) are bit-identical to the serial baseline. Workers only change
// wall time — the policy remains the single decision-maker, so the
// identity holds by construction, and this test keeps it that way.
func TestParallelConformance(t *testing.T) {
	store, entries := conformanceEntries(t)
	for _, c := range smallCaches() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			store.ResetStats()
			var want bytes.Buffer
			base, err := c.Restore(context.Background(), entries, StoreFetcher(store), &want)
			if err != nil {
				t.Fatal(err)
			}
			baseReads := store.Stats().Reads
			for _, workers := range []int{1, 2, 8} {
				for _, depth := range []int{-1, 0, 4} {
					workers, depth := workers, depth
					t.Run(fmt.Sprintf("workers-%d/depth-%d", workers, depth), func(t *testing.T) {
						store.ResetStats()
						fetch, done := MaybePrefetchParallel(StoreFetcher(store), entries, depth, workers, nil)
						var got bytes.Buffer
						pw := NewParallelWriter(&got, ParallelOptions{Workers: workers})
						stats, err := c.Restore(context.Background(), entries, fetch, pw)
						done()
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(got.Bytes(), want.Bytes()) {
							t.Fatalf("parallel restore differs from serial baseline (%d vs %d bytes)",
								got.Len(), want.Len())
						}
						if stats != base {
							t.Fatalf("stats diverged: %+v vs serial %+v", stats, base)
						}
						if gotReads := store.Stats().Reads; gotReads != baseReads {
							t.Fatalf("StoreStats.Reads = %d, serial baseline = %d", gotReads, baseReads)
						}
					})
				}
			}
		})
	}
}

// TestParallelRestorePropagatesFetchError: a missing container must
// fail the parallel restore cleanly — the assembler drains its workers
// and reorder window instead of deadlocking, and the error is the
// fetch error, not a downstream artifact.
func TestParallelRestorePropagatesFetchError(t *testing.T) {
	store, entries, _ := fixture(t, 6, 8, 512)
	bad := append([]recipe.Entry(nil), entries...)
	// A fingerprint no container holds, so even chunk caches (which
	// would satisfy a repeated FP without fetching) must hit CID 99.
	bad = append(bad, recipe.Entry{FP: fp.Of([]byte("never stored")), Size: 12, CID: 99})
	for _, c := range allCaches() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			var got bytes.Buffer
			pw := NewParallelWriter(&got, ParallelOptions{Workers: 4})
			_, err := c.Restore(context.Background(), bad, StoreFetcher(store), pw)
			if err == nil {
				t.Fatal("missing container did not fail the parallel restore")
			}
			if !errors.Is(err, container.ErrNotFound) {
				t.Fatalf("error lost the ErrNotFound cause: %v", err)
			}
		})
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n       int
	written int
}

var errSink = errors.New("sink full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errSink
	}
	w.written += len(p)
	return len(p), nil
}

// TestParallelRestorePropagatesWriteError: a destination that starts
// failing mid-restore surfaces its error (matching serial semantics)
// and the assembler shuts down instead of deadlocking on the reorder
// window.
func TestParallelRestorePropagatesWriteError(t *testing.T) {
	store, entries, _ := fixture(t, 12, 16, 1024)
	for _, c := range allCaches() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			pw := NewParallelWriter(&failWriter{n: 4 << 10}, ParallelOptions{Workers: 4})
			_, err := c.Restore(context.Background(), entries, StoreFetcher(store), pw)
			if !errors.Is(err, errSink) {
				t.Fatalf("err = %v, want the sink's write error", err)
			}
		})
	}
}

// TestParallelRestoreCancelsPromptly: cancelling a parallel restore
// parked on a never-completing fetch returns context.Canceled without
// hanging the worker pool or the reorder writer.
func TestParallelRestoreCancelsPromptly(t *testing.T) {
	store, entries, _ := fixture(t, 8, 8, 512)
	for _, c := range allCaches() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			t.Parallel()
			slow := newSlowFetcher(StoreFetcher(store))
			fetch, done := MaybePrefetchParallel(slow, entries, 4, 4, nil)
			defer done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errCh := make(chan error, 1)
			go func() {
				pw := NewParallelWriter(&bytes.Buffer{}, ParallelOptions{Workers: 4})
				_, err := c.Restore(ctx, entries, fetch, pw)
				errCh <- err
			}()
			<-slow.started
			cancel()
			if err := <-errCh; !errors.Is(err, context.Canceled) {
				t.Fatalf("restore returned %v, want context.Canceled", err)
			}
		})
	}
}

// gateFetcher blocks every read on a shared gate while counting Gets
// per container. The gate deliberately ignores context cancellation:
// it models a backend read already in flight at the device, which no
// client-side cancel can recall.
type gateFetcher struct {
	inner   Fetcher
	mu      sync.Mutex
	gets    map[container.ID]int
	once    sync.Once
	started chan struct{} // closed when the first Get begins waiting
	release chan struct{}
}

func newGateFetcher(inner Fetcher) *gateFetcher {
	return &gateFetcher{
		inner:   inner,
		gets:    make(map[container.ID]int),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gateFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	g.mu.Lock()
	g.gets[id]++
	g.mu.Unlock()
	g.once.Do(func() { close(g.started) })
	<-g.release
	return g.inner.Get(context.Background(), id)
}

func (g *gateFetcher) count(id container.ID) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gets[id]
}

// TestAwaitNoDuplicateFetchOnPipelineDeath is the regression test for
// the prefetch double-fetch race: the pipeline dies while a worker is
// mid-fetch on the awaited item. The awaiter must recognize that the
// worker owns the item (abandon fails) and wait for its buffered
// outcome instead of issuing a second backend read. Before the fix the
// non-blocking peek fell through to a direct read and the container
// was fetched twice — gets[1] observed 2 here, deterministically.
func TestAwaitNoDuplicateFetchOnPipelineDeath(t *testing.T) {
	store, entries, _ := fixture(t, 1, 4, 256)
	gate := newGateFetcher(StoreFetcher(store))
	p := NewPrefetchFetcher(gate, entries, 1)
	defer p.Close()

	type result struct {
		ctn *container.Container
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		ctn, err := p.Get(context.Background(), 1)
		resCh <- result{ctn, err}
	}()
	<-gate.started // the worker owns item 1 and is parked at the gate
	p.cancel()     // the pipeline dies under the awaiter
	// Let the awaiter observe the dead pipeline while the outcome is
	// still pending; only then release the in-flight "device" read.
	time.Sleep(20 * time.Millisecond)
	close(gate.release)

	res := <-resCh
	if res.err != nil {
		t.Fatalf("Get after pipeline death: %v", res.err)
	}
	if res.ctn == nil || res.ctn.ID() != 1 {
		t.Fatalf("Get returned %v, want container 1", res.ctn)
	}
	if n := gate.count(1); n != 1 {
		t.Fatalf("container 1 fetched %d times, want exactly 1 (double-fetch race)", n)
	}
}

// TestAwaitAbandonedItemReadsThroughOnce covers the other side of the
// ownership CAS: the pipeline dies before any worker picks the item
// up. The awaiter's abandon succeeds — proving no worker ever will —
// and exactly one direct read serves the request.
func TestAwaitAbandonedItemReadsThroughOnce(t *testing.T) {
	store, entries, _ := fixture(t, 2, 4, 256)
	gate := newGateFetcher(StoreFetcher(store))
	p := NewPrefetchFetcher(gate, entries, 2)
	p.workers = 1 // one worker: item 2 is dispatched but never taken
	defer p.Close()

	type result struct {
		ctn *container.Container
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		ctn, err := p.Get(context.Background(), 1)
		resCh <- result{ctn, err}
	}()
	<-gate.started // the only worker is parked fetching item 1
	p.cancel()
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	if res := <-resCh; res.err != nil {
		t.Fatalf("Get(1): %v", res.err)
	}

	// Item 2 sits in the (closed, drained-on-read) window, state idle.
	ctn, err := p.Get(context.Background(), 2)
	if err != nil {
		t.Fatalf("Get(2) after pipeline death: %v", err)
	}
	if ctn.ID() != 2 {
		t.Fatalf("Get(2) returned container %d", ctn.ID())
	}
	if n := gate.count(2); n != 1 {
		t.Fatalf("container 2 fetched %d times, want exactly 1", n)
	}
	if n := gate.count(1); n != 1 {
		t.Fatalf("container 1 fetched %d times, want exactly 1", n)
	}
}
