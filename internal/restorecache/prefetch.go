package restorecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"hidestore/internal/container"
	"hidestore/internal/obs"
	"hidestore/internal/pipeline"
	"hidestore/internal/recipe"
)

// DefaultPrefetchDepth is the read-ahead window, in distinct containers,
// used when a prefetch depth of 0 is requested.
const DefaultPrefetchDepth = 8

// PrefetchFetcher overlaps container reads with chunk assembly. The
// resolved recipe discloses the whole future access sequence, so the
// prefetcher derives the distinct-container order up front (each cache
// policy's first fetch of any container happens in first-appearance
// order — see the invariant note below) and a bounded worker pool issues
// those reads ahead of the assembler. Results flow back through a
// bounded in-order queue, so at most `depth` reads run ahead of
// consumption.
//
// Accounting invariant (§5.3): Stats.ContainerReads and the speed factor
// are defined by *which* containers the cache policy requests, not when.
// The prefetcher therefore only accelerates reads the policy issues
// anyway: every planned container is fetched exactly once and handed
// over on the policy's first request for it, and any request outside the
// plan — a re-read after eviction, or FAA re-reading a container in a
// later area — falls through to a direct read, exactly as it would
// serially. Counting happens above this layer (countingFetcher), so
// ContainerReads is identical with prefetch on or off.
//
// The first-appearance argument assumes each fingerprint lives in one
// container of the sequence (true for the HiDeStore engine's resolved
// recipes). If rewriting duplicates a fingerprint across containers, a
// chunk cache may skip a planned container; the restore stays
// byte-correct but the underlying store then sees the skipped read.
//
// Get must be called from a single goroutine (the cache policy); Close
// releases the worker pool and is safe to call even if Get never ran.
type PrefetchFetcher struct {
	inner   Fetcher
	plan    []container.ID
	planned map[container.ID]bool
	// pos maps each planned container to its plan index. First requests
	// arrive in plan order, so once the request for plan position k is
	// served, any stashed item at an earlier position was skipped by the
	// policy (its chunks were all satisfied from cache) and will never be
	// requested — Get drains those at handover instead of stranding them
	// in stash with their window occupancy held until Close.
	pos   map[container.ID]int
	depth int
	// workers widens the fetch pool independently of the window: the
	// effective fetch parallelism is min(workers, depth, len(plan)),
	// because the dispatcher never runs more than depth items ahead of
	// consumption. 0 selects depth (the historical coupling).
	workers int

	start   sync.Once
	cancel  context.CancelFunc
	group   *pipeline.Group
	pipeCtx context.Context
	queue   chan *prefetchItem
	// stash holds queue items popped while searching for an earlier
	// request; keys are container IDs not yet consumed.
	stash map[container.ID]*prefetchItem

	// mx, when set, exposes the read-ahead window's live occupancy:
	// incremented by the dispatcher as items enter the window,
	// decremented as the policy consumes them (outstanding tracks the
	// balance so Close can zero the gauge on an aborted restore).
	mx          *obs.RestoreMetrics
	outstanding atomic.Int64
}

// fetchOutcome is one completed (or failed) container read.
type fetchOutcome struct {
	ctn *container.Container
	err error
}

// Item states: a worker must take the item before touching the
// backend, and an awaiter that finds the pipeline dead must abandon it
// before reading through — the CAS decides which side performs the
// read, so it happens exactly once.
const (
	itemIdle      int32 = iota // dispatched; no worker has picked it up
	itemTaken                  // a worker owns it and will deliver exactly one outcome
	itemAbandoned              // the awaiter read through; workers must skip it
)

// prefetchItem tracks one planned read; ch has capacity 1 so workers
// never block delivering.
type prefetchItem struct {
	id    container.ID
	ch    chan fetchOutcome
	state atomic.Int32
}

// tryTake claims the item for a worker fetch.
func (it *prefetchItem) tryTake() bool { return it.state.CompareAndSwap(itemIdle, itemTaken) }

// abandon claims the item for an awaiter read-through.
func (it *prefetchItem) abandon() bool { return it.state.CompareAndSwap(itemIdle, itemAbandoned) }

// NewPrefetchFetcher plans read-ahead over the resolved entries: the
// distinct containers in first-appearance order. depth <= 0 selects
// DefaultPrefetchDepth.
func NewPrefetchFetcher(inner Fetcher, entries []recipe.Entry, depth int) *PrefetchFetcher {
	if depth <= 0 {
		depth = DefaultPrefetchDepth
	}
	planned := make(map[container.ID]bool)
	pos := make(map[container.ID]int)
	var plan []container.ID
	for _, e := range entries {
		if e.CID <= 0 {
			continue // validate() rejects these at the cache layer
		}
		id := container.ID(e.CID)
		if !planned[id] {
			planned[id] = true
			pos[id] = len(plan)
			plan = append(plan, id)
		}
	}
	return &PrefetchFetcher{
		inner:   inner,
		plan:    plan,
		planned: planned,
		pos:     pos,
		depth:   depth,
		stash:   make(map[container.ID]*prefetchItem),
	}
}

// run starts the dispatcher and worker pool; called once, from the first
// planned Get, so the pool inherits that restore's context.
func (p *PrefetchFetcher) run(ctx context.Context) {
	ictx, cancel := context.WithCancel(ctx)
	p.cancel = cancel
	g, gctx := pipeline.WithContext(ictx)
	p.group, p.pipeCtx = g, gctx
	// queue's capacity bounds the read-ahead window; work is unbuffered
	// so workers pick items up in plan order.
	p.queue = make(chan *prefetchItem, p.depth)
	work := make(chan *prefetchItem)
	plan := p.plan
	g.Go(func() error {
		defer close(p.queue)
		defer close(work)
		for _, id := range plan {
			it := &prefetchItem{id: id, ch: make(chan fetchOutcome, 1)}
			select {
			case p.queue <- it:
				p.windowEnter()
			case <-gctx.Done():
				return gctx.Err()
			}
			select {
			case work <- it:
			case <-gctx.Done():
				return gctx.Err()
			}
		}
		return nil
	})
	workers := p.workers
	if workers <= 0 {
		workers = p.depth
	}
	if workers > len(plan) {
		workers = len(plan)
	}
	for i := 0; i < workers; i++ {
		g.Go(func() error {
			for {
				select {
				case it, ok := <-work:
					if !ok {
						return nil
					}
					if !it.tryTake() {
						continue // its awaiter already read through
					}
					ctn, err := p.inner.Get(gctx, it.id)
					it.ch <- fetchOutcome{ctn: ctn, err: err}
				case <-gctx.Done():
					return gctx.Err()
				}
			}
		})
	}
}

// Get implements Fetcher. The first request for each planned container
// is served from the read-ahead pipeline; everything else — re-reads the
// policy issues after evicting, or requests after the pipeline stops —
// reads through directly, preserving the serial read sequence.
func (p *PrefetchFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	if !p.planned[id] {
		return p.inner.Get(ctx, id)
	}
	p.start.Do(func() { p.run(ctx) })
	delete(p.planned, id) // consumed: later requests read through
	if it, ok := p.stash[id]; ok {
		delete(p.stash, id)
		p.windowLeave()
		p.drainSkipped(p.pos[id])
		return p.await(ctx, it)
	}
	for {
		select {
		case it, ok := <-p.queue:
			if !ok {
				// The pipeline stopped before dispatching id (cancel or
				// error); no worker touched it, so a direct read keeps
				// the count at one.
				return p.inner.Get(ctx, id)
			}
			if it.id == id {
				p.windowLeave()
				p.drainSkipped(p.pos[id])
				return p.await(ctx, it)
			}
			p.stash[it.id] = it
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// drainSkipped evicts stashed items the policy can no longer request.
// First requests arrive in plan order, so once position k is handed
// over, a stashed item at an earlier position was skipped outright —
// its fetched outcome is dropped, its window occupancy returned, and
// the id unmarked from the plan so a late (unplanned) request for it
// reads through directly instead of scanning a queue that will never
// deliver it again.
func (p *PrefetchFetcher) drainSkipped(k int) {
	for sid, it := range p.stash {
		if p.pos[sid] < k {
			delete(p.stash, sid)
			delete(p.planned, sid)
			p.windowLeave()
			_ = it // the worker's outcome (buffered in it.ch) is dropped
		}
	}
}

// await blocks for it's outcome, abandoning the wait if either the
// caller's context or the pipeline is done.
//
// On pipeline shutdown the awaiter races the item's worker: the worker
// may be mid-fetch (its outcome will still land in the buffered it.ch)
// or may never pick the item up. A non-blocking peek can't tell those
// apart — reading through while a fetch was in flight cost a second,
// uncounted backend read (backend Meter ops diverged from
// Stats.ContainerReads under cancellation). The item's state machine
// decides definitively: abandon() succeeding proves no worker has — or
// ever will — fetch it, so exactly one side issues the read.
func (p *PrefetchFetcher) await(ctx context.Context, it *prefetchItem) (*container.Container, error) {
	select {
	case out := <-it.ch:
		return p.settle(ctx, it, out)
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.pipeCtx.Done():
		// Definitive re-check: an outcome may have landed between the
		// pipeline dying and this branch winning the select.
		select {
		case out := <-it.ch:
			return p.settle(ctx, it, out)
		default:
		}
		if it.abandon() {
			// No worker took the item and tryTake now fails for it, so
			// one direct read keeps the backend count at one.
			return p.inner.Get(ctx, it.id)
		}
		// A worker owns the item; it delivers exactly one outcome even
		// when its fetch fails, and reading through before that lands
		// would double-fetch.
		select {
		case out := <-it.ch:
			return p.settle(ctx, it, out)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// settle maps a worker-delivered outcome to the caller. A fetch the
// pipeline's own cancellation aborted — while the caller is still
// live — never reached a useful read, so it is retried directly,
// preserving the read-through semantics the policy sees when the
// pipeline stops for any other reason.
func (p *PrefetchFetcher) settle(ctx context.Context, it *prefetchItem, out fetchOutcome) (*container.Container, error) {
	if out.err != nil && errors.Is(out.err, context.Canceled) && ctx.Err() == nil {
		return p.inner.Get(ctx, it.id)
	}
	return out.ctn, out.err
}

// windowEnter marks one container entering the read-ahead window.
func (p *PrefetchFetcher) windowEnter() {
	if p.mx == nil {
		return
	}
	p.outstanding.Add(1)
	p.mx.PrefetchOccupancy.Add(1)
}

// windowLeave marks one container handed over to the policy.
func (p *PrefetchFetcher) windowLeave() {
	if p.mx == nil {
		return
	}
	p.outstanding.Add(-1)
	p.mx.PrefetchOccupancy.Add(-1)
}

// Observe exposes the read-ahead window through mx: the occupancy
// gauge tracks containers currently in flight or stashed, and the
// planned counter advances by the plan length. Call before the first
// Get; nil mx is a no-op.
func (p *PrefetchFetcher) Observe(mx *obs.RestoreMetrics) {
	if mx == nil {
		return
	}
	p.mx = mx
	mx.PrefetchPlanned.Add(uint64(len(p.plan)))
}

// Close cancels outstanding read-ahead and waits for the worker pool to
// drain. Safe to call when Get never started the pipeline, and more than
// once.
func (p *PrefetchFetcher) Close() {
	// An aborted restore leaves unconsumed items in the window; return
	// their occupancy so the gauge reads 0 between restores, and drop
	// any stashed outcomes so their container images can be collected.
	clear(p.stash)
	if p.mx != nil {
		if n := p.outstanding.Swap(0); n != 0 {
			p.mx.PrefetchOccupancy.Add(-n)
		}
	}
	if p.cancel == nil {
		return
	}
	p.cancel()
	// Workers never block (item channels are buffered), so Wait returns
	// promptly; its error is the cancellation we just caused.
	//hidelint:ignore discarded-error Wait only reports the cancellation this Close just triggered
	_ = p.group.Wait()
}

// MaybePrefetch wraps fetch with a PrefetchFetcher according to depth:
// negative disables prefetching, zero selects DefaultPrefetchDepth. The
// returned func must be called once the restore finishes.
func MaybePrefetch(fetch Fetcher, entries []recipe.Entry, depth int) (Fetcher, func()) {
	return MaybePrefetchObserved(fetch, entries, depth, nil)
}

// MaybePrefetchObserved is MaybePrefetch with the read-ahead window
// wired into mx (nil for no instrumentation).
func MaybePrefetchObserved(fetch Fetcher, entries []recipe.Entry, depth int, mx *obs.RestoreMetrics) (Fetcher, func()) {
	return MaybePrefetchParallel(fetch, entries, depth, 0, mx)
}

// MaybePrefetchParallel is MaybePrefetchObserved with an explicit
// fetch-pool width: workers <= 0 keeps the historical coupling (pool
// width = depth), larger values widen the pool for the parallel
// restore mode. The effective fetch parallelism stays bounded by the
// read-ahead window — min(workers, depth, distinct containers) — so
// the window, not the pool, remains the memory bound. Which containers
// are read, and how often, is unchanged by either knob.
func MaybePrefetchParallel(fetch Fetcher, entries []recipe.Entry, depth, workers int, mx *obs.RestoreMetrics) (Fetcher, func()) {
	if depth < 0 {
		return fetch, func() {}
	}
	pf := NewPrefetchFetcher(fetch, entries, depth)
	pf.workers = workers
	pf.Observe(mx)
	return pf, pf.Close
}
