package restorecache

import (
	"context"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/obs"
)

// TestPrefetchDrainsSkippedPlanned: when the policy skips a planned
// container (all its chunks satisfied from cache) and requests a later
// one, the skipped item must not strand in the stash with its window
// occupancy held until Close. Regression test: before the drain, Get(3)
// after Get(1) left container 2's item in stash and the occupancy gauge
// at 1 for the rest of the restore.
func TestPrefetchDrainsSkippedPlanned(t *testing.T) {
	store, entries, _ := fixture(t, 3, 4, 256)
	reg := obs.NewRegistry()
	mx := obs.NewRestoreMetrics(reg)
	p := NewPrefetchFetcher(StoreFetcher(store), entries, 8)
	p.Observe(mx)
	defer p.Close()

	ctx := context.Background()
	if _, err := p.Get(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Skip container 2 entirely: request 3 next, as a chunk cache that
	// already holds all of 2's chunks would.
	if _, err := p.Get(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if n := len(p.stash); n != 0 {
		t.Fatalf("stash holds %d stranded item(s) after skipping a planned container", n)
	}
	if n := p.outstanding.Load(); n != 0 {
		t.Fatalf("outstanding = %d before Close, want 0", n)
	}
	if v := mx.PrefetchOccupancy.Value(); v != 0 {
		t.Fatalf("occupancy gauge = %d before Close, want 0", v)
	}
	// A late request for the skipped container is no longer planned:
	// it reads through directly instead of scanning the drained queue.
	if _, err := p.Get(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if p.planned[container.ID(2)] {
		t.Fatal("skipped container still marked planned after drain")
	}
	if reads := store.Stats().Reads; reads != 4 {
		t.Fatalf("store reads = %d, want 4 (3 planned + 1 read-through)", reads)
	}
	p.Close()
	if v := mx.PrefetchOccupancy.Value(); v != 0 {
		t.Fatalf("occupancy gauge = %d after Close, want 0", v)
	}
}

// TestPrefetchCloseZeroesGaugeAfterSkip: even when the drain is never
// triggered (the restore aborts right after the skip), Close returns all
// outstanding occupancy so the gauge reads 0 between restores.
func TestPrefetchCloseZeroesGaugeAfterSkip(t *testing.T) {
	store, entries, _ := fixture(t, 4, 4, 256)
	reg := obs.NewRegistry()
	mx := obs.NewRestoreMetrics(reg)
	p := NewPrefetchFetcher(StoreFetcher(store), entries, 8)
	p.Observe(mx)
	if _, err := p.Get(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if v := mx.PrefetchOccupancy.Value(); v != 0 {
		t.Fatalf("occupancy gauge = %d after Close, want 0", v)
	}
	if n := len(p.stash); n != 0 {
		t.Fatalf("stash holds %d item(s) after Close", n)
	}
}
