// Package restorecache implements the restore-phase caching schemes the
// paper evaluates (§2.3, §5.3).
//
// Restoring a backup walks its recipe and reads each chunk from its
// container; containers are the unit of disk I/O, so the restore cost is
// the number of *container reads*. All schemes here exploit the logical
// locality of backup streams — chunks are read in roughly the order they
// were written — to serve many chunks per container read:
//
//   - ContainerLRU caches whole containers (Zhu et al. style).
//   - ChunkLRU caches individual chunks from fetched containers.
//   - FAA fills a forward assembly area from each container exactly once
//     per area (Lillibridge et al., FAST'13).
//   - ALACC combines an assembly area with an adaptive look-ahead chunk
//     cache (Cao et al., FAST'18), the strongest published baseline.
//   - OPT is Belady's clairvoyant container cache, an upper bound used by
//     the ablation benchmarks.
//
// The paper's metric is the speed factor: MB restored per container read.
// Every scheme returns it in its Stats.
package restorecache

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"hidestore/internal/container"
	"hidestore/internal/recipe"
)

// ErrUnresolved reports a recipe entry whose CID is not a positive
// container ID; callers must flatten/resolve recipes before restoring.
var ErrUnresolved = errors.New("restorecache: entry has unresolved CID")

// Fetcher reads containers by ID. Every Get is one counted container
// read. Get must honor ctx: a cancelled context returns ctx.Err()
// promptly (at worst after the in-flight container read). Wrap a
// container.Store with StoreFetcher to satisfy it.
type Fetcher interface {
	Get(ctx context.Context, id container.ID) (*container.Container, error)
}

// storeFetcher adapts a container.Store to the Fetcher interface,
// checking ctx before every read.
type storeFetcher struct {
	store container.Store
}

// StoreFetcher returns a Fetcher backed by s.
func StoreFetcher(s container.Store) Fetcher {
	return storeFetcher{store: s}
}

// Get implements Fetcher.
func (f storeFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.store.Get(id)
}

// Stats describes one restore run.
type Stats struct {
	// ContainerReads counts Fetcher.Get calls.
	ContainerReads uint64
	// BytesRestored is the logical stream size written.
	BytesRestored uint64
	// CacheHits counts chunks served without a fetch.
	CacheHits uint64
	// Chunks is the number of chunk references restored.
	Chunks uint64
}

// SpeedFactor returns MB restored per container read (the paper's §5.3
// metric); infinite locality (zero reads) reports the restored MB.
func (s Stats) SpeedFactor() float64 {
	mb := float64(s.BytesRestored) / (1 << 20)
	if s.ContainerReads == 0 {
		return mb
	}
	return mb / float64(s.ContainerReads)
}

// Cache restores a recipe's chunk sequence through a particular caching
// strategy. Implementations are single-use-safe: each Restore call is
// independent.
type Cache interface {
	// Name identifies the scheme ("container-lru", "chunk-lru", "faa",
	// "alacc", "opt").
	Name() string
	// Restore reads every entry's chunk (in order) from fetch and writes
	// the reassembled stream to w. All entries must carry positive CIDs.
	// A cancelled ctx aborts promptly with ctx.Err(), at worst after the
	// in-flight container read.
	Restore(ctx context.Context, entries []recipe.Entry, fetch Fetcher, w io.Writer) (Stats, error)
}

// New returns a default-configured cache by scheme name.
func New(name string) (Cache, error) {
	switch name {
	case "container-lru", "":
		return NewContainerLRU(0), nil
	case "chunk-lru":
		return NewChunkLRU(0), nil
	case "faa":
		return NewFAA(0), nil
	case "alacc":
		return NewALACC(Options{}), nil
	case "opt":
		return NewOPT(0), nil
	default:
		return nil, fmt.Errorf("restorecache: unknown scheme %q", name)
	}
}

// validate rejects unresolved entries up front so schemes can assume
// positive CIDs.
func validate(entries []recipe.Entry) error {
	for i, e := range entries {
		if e.CID <= 0 {
			return fmt.Errorf("%w: entry %d CID %d", ErrUnresolved, i, e.CID)
		}
	}
	return nil
}

// countingFetcher wraps a Fetcher, tallying reads into stats. The
// increment is atomic: today every policy issues Gets from a single
// goroutine, but the counter is the §5.3 accounting ground truth and
// must stay exact if a future policy (or the obs plane's race tier,
// which hammers restores while scraping /metrics) overlaps reads.
type countingFetcher struct {
	inner Fetcher
	stats *Stats
}

func (f *countingFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	c, err := f.inner.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&f.stats.ContainerReads, 1)
	return c, nil
}
