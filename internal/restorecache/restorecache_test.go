package restorecache

import (
	"bytes"
	"context"
	"math/rand"
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
	"hidestore/internal/recipe"
)

// fixture builds a MemStore with nContainers containers of chunksPer
// chunks each (chunkSize bytes) and returns the store plus per-chunk
// entries in storage order and the original payloads by fingerprint.
func fixture(t *testing.T, nContainers, chunksPer, chunkSize int) (*container.MemStore, []recipe.Entry, map[fp.FP][]byte) {
	t.Helper()
	store := container.NewMemStore()
	rng := rand.New(rand.NewSource(7))
	var entries []recipe.Entry
	payloads := make(map[fp.FP][]byte)
	for cid := 1; cid <= nContainers; cid++ {
		ctn := container.NewWithCapacity(container.ID(cid), container.DefaultCapacity)
		for j := 0; j < chunksPer; j++ {
			data := make([]byte, chunkSize)
			rng.Read(data)
			f := fp.Of(data)
			if err := ctn.Add(f, data); err != nil {
				t.Fatal(err)
			}
			payloads[f] = data
			entries = append(entries, recipe.Entry{FP: f, Size: uint32(chunkSize), CID: int32(cid)})
		}
		if err := store.Put(ctn); err != nil {
			t.Fatal(err)
		}
	}
	return store, entries, payloads
}

func allCaches() []Cache {
	return []Cache{
		NewContainerLRU(8),
		NewChunkLRU(1 << 20),
		NewFAA(256 << 10),
		NewALACC(Options{AreaBytes: 256 << 10, CacheBytes: 512 << 10, LookAheadBytes: 512 << 10}),
		NewOPT(8),
	}
}

func expected(entries []recipe.Entry, payloads map[fp.FP][]byte) []byte {
	var out []byte
	for _, e := range entries {
		out = append(out, payloads[e.FP]...)
	}
	return out
}

func TestNewFactory(t *testing.T) {
	for _, name := range []string{"container-lru", "chunk-lru", "faa", "alacc", "opt"} {
		c, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("Name = %q, want %q", c.Name(), name)
		}
	}
	if c, err := New(""); err != nil || c.Name() != "container-lru" {
		t.Fatal("empty name should default to container-lru")
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

// TestRoundTripSequential restores a stream laid out in storage order:
// every scheme must reproduce the exact bytes with one read per container.
func TestRoundTripSequential(t *testing.T) {
	store, entries, payloads := fixture(t, 10, 20, 1024)
	want := expected(entries, payloads)
	for _, c := range allCaches() {
		t.Run(c.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			stats, err := c.Restore(context.Background(), entries, StoreFetcher(store), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatal("restored bytes differ from original")
			}
			if stats.ContainerReads != 10 {
				t.Fatalf("ContainerReads = %d, want 10 (perfect locality)", stats.ContainerReads)
			}
			if stats.BytesRestored != uint64(len(want)) {
				t.Fatalf("BytesRestored = %d, want %d", stats.BytesRestored, len(want))
			}
			if stats.Chunks != uint64(len(entries)) {
				t.Fatalf("Chunks = %d, want %d", stats.Chunks, len(entries))
			}
		})
	}
}

// TestRoundTripShuffled restores a randomly permuted reference order:
// correctness must hold regardless of locality.
func TestRoundTripShuffled(t *testing.T) {
	store, entries, payloads := fixture(t, 6, 15, 512)
	rng := rand.New(rand.NewSource(3))
	shuffled := append([]recipe.Entry(nil), entries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	want := expected(shuffled, payloads)
	for _, c := range allCaches() {
		t.Run(c.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := c.Restore(context.Background(), shuffled, StoreFetcher(store), &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatal("restored bytes differ from original")
			}
		})
	}
}

// TestRepeatedChunks restores a recipe that references the same chunk
// multiple times (dedup within a version).
func TestRepeatedChunks(t *testing.T) {
	store, entries, payloads := fixture(t, 2, 5, 256)
	repeated := append(append([]recipe.Entry(nil), entries...), entries[0], entries[3], entries[0])
	want := expected(repeated, payloads)
	for _, c := range allCaches() {
		t.Run(c.Name(), func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := c.Restore(context.Background(), repeated, StoreFetcher(store), &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatal("restored bytes differ")
			}
		})
	}
}

// TestFragmentationThrashing interleaves two containers' chunks. A
// 1-container LRU thrashes (one read per chunk); FAA and OPT exploit the
// area/future knowledge and read each container far fewer times.
func TestFragmentationThrashing(t *testing.T) {
	store, entries, _ := fixture(t, 2, 50, 1024)
	// Interleave: c1[0], c2[0], c1[1], c2[1], ...
	inter := make([]recipe.Entry, 0, len(entries))
	for j := 0; j < 50; j++ {
		inter = append(inter, entries[j], entries[50+j])
	}
	lru1 := NewContainerLRU(1)
	var buf bytes.Buffer
	lruStats, err := lru1.Restore(context.Background(), inter, StoreFetcher(store), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if lruStats.ContainerReads != 100 {
		t.Fatalf("1-container LRU reads = %d, want 100 (thrash)", lruStats.ContainerReads)
	}
	faa := NewFAA(1 << 20) // area covers the whole stream
	buf.Reset()
	faaStats, err := faa.Restore(context.Background(), inter, StoreFetcher(store), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if faaStats.ContainerReads != 2 {
		t.Fatalf("FAA reads = %d, want 2", faaStats.ContainerReads)
	}
	opt := NewOPT(2)
	buf.Reset()
	optStats, err := opt.Restore(context.Background(), inter, StoreFetcher(store), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if optStats.ContainerReads != 2 {
		t.Fatalf("OPT reads = %d, want 2", optStats.ContainerReads)
	}
	if faaStats.SpeedFactor() <= lruStats.SpeedFactor() {
		t.Fatal("FAA speed factor should beat a thrashing LRU")
	}
}

// TestOPTNeverWorseThanLRU compares reads on a random reference string at
// equal capacity.
func TestOPTNeverWorseThanLRU(t *testing.T) {
	store, entries, _ := fixture(t, 12, 10, 512)
	rng := rand.New(rand.NewSource(11))
	seq := make([]recipe.Entry, 400)
	for i := range seq {
		seq[i] = entries[rng.Intn(len(entries))]
	}
	var bufA, bufB bytes.Buffer
	lruStats, err := NewContainerLRU(4).Restore(context.Background(), seq, StoreFetcher(store), &bufA)
	if err != nil {
		t.Fatal(err)
	}
	optStats, err := NewOPT(4).Restore(context.Background(), seq, StoreFetcher(store), &bufB)
	if err != nil {
		t.Fatal(err)
	}
	if optStats.ContainerReads > lruStats.ContainerReads {
		t.Fatalf("OPT reads %d > LRU reads %d", optStats.ContainerReads, lruStats.ContainerReads)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("schemes restored different bytes")
	}
}

// TestALACCCacheBeatsFAAOnRevisits builds a reference pattern that leaves
// an area and comes back: the look-ahead chunk cache should save reads
// relative to plain FAA with the same area size.
func TestALACCCacheBeatsFAAOnRevisits(t *testing.T) {
	store, entries, _ := fixture(t, 8, 25, 1024)
	// Pattern: walk all containers once, then walk them again — the
	// second pass revisits chunks cached during the first.
	pattern := append(append([]recipe.Entry(nil), entries...), entries...)
	area := 32 << 10 // small area: FAA re-reads containers on the second pass
	var bufA, bufB bytes.Buffer
	faaStats, err := NewFAA(area).Restore(context.Background(), pattern, StoreFetcher(store), &bufA)
	if err != nil {
		t.Fatal(err)
	}
	alaccStats, err := NewALACC(Options{
		AreaBytes:      area,
		CacheBytes:     1 << 20,
		LookAheadBytes: 1 << 20,
	}).Restore(context.Background(), pattern, StoreFetcher(store), &bufB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("FAA and ALACC restored different bytes")
	}
	if alaccStats.ContainerReads >= faaStats.ContainerReads {
		t.Fatalf("ALACC reads %d, FAA reads %d: cache should help",
			alaccStats.ContainerReads, faaStats.ContainerReads)
	}
}

func TestUnresolvedEntriesRejected(t *testing.T) {
	store, entries, _ := fixture(t, 1, 2, 128)
	for _, cid := range []int32{0, -3} {
		bad := append([]recipe.Entry(nil), entries...)
		bad[1].CID = cid
		for _, c := range allCaches() {
			var buf bytes.Buffer
			if _, err := c.Restore(context.Background(), bad, StoreFetcher(store), &buf); err == nil {
				t.Fatalf("%s accepted CID %d", c.Name(), cid)
			}
		}
	}
}

func TestMissingContainerError(t *testing.T) {
	store, entries, _ := fixture(t, 1, 2, 128)
	bad := append([]recipe.Entry(nil), entries...)
	bad[0].CID = 42 // no such container
	for _, c := range allCaches() {
		var buf bytes.Buffer
		if _, err := c.Restore(context.Background(), bad, StoreFetcher(store), &buf); err == nil {
			t.Fatalf("%s ignored a missing container", c.Name())
		}
	}
}

func TestSpeedFactor(t *testing.T) {
	s := Stats{BytesRestored: 8 << 20, ContainerReads: 4}
	if got := s.SpeedFactor(); got != 2.0 {
		t.Fatalf("SpeedFactor = %v, want 2.0", got)
	}
	zero := Stats{BytesRestored: 3 << 20}
	if got := zero.SpeedFactor(); got != 3.0 {
		t.Fatalf("SpeedFactor with no reads = %v, want 3.0", got)
	}
}

func TestEmptyRestore(t *testing.T) {
	store, _, _ := fixture(t, 1, 1, 64)
	for _, c := range allCaches() {
		var buf bytes.Buffer
		stats, err := c.Restore(context.Background(), nil, StoreFetcher(store), &buf)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if stats.BytesRestored != 0 || buf.Len() != 0 {
			t.Fatalf("%s restored bytes from an empty recipe", c.Name())
		}
	}
}

// TestLargeChunkExceedsArea: a chunk larger than the assembly area must
// still restore (areas always admit at least one entry).
func TestLargeChunkExceedsArea(t *testing.T) {
	store := container.NewMemStore()
	ctn := container.NewWithCapacity(1, container.DefaultCapacity)
	big := bytes.Repeat([]byte("x"), 128<<10)
	f := fp.Of(big)
	if err := ctn.Add(f, big); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctn); err != nil {
		t.Fatal(err)
	}
	entries := []recipe.Entry{{FP: f, Size: uint32(len(big)), CID: 1}}
	for _, c := range []Cache{NewFAA(4 << 10), NewALACC(Options{AreaBytes: 4 << 10})} {
		var buf bytes.Buffer
		if _, err := c.Restore(context.Background(), entries, StoreFetcher(store), &buf); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(buf.Bytes(), big) {
			t.Fatalf("%s corrupted the oversized chunk", c.Name())
		}
	}
}

func BenchmarkRestoreSchemes(b *testing.B) {
	store := container.NewMemStore()
	rng := rand.New(rand.NewSource(5))
	var entries []recipe.Entry
	for cid := 1; cid <= 32; cid++ {
		ctn := container.NewWithCapacity(container.ID(cid), container.DefaultCapacity)
		for j := 0; j < 64; j++ {
			data := make([]byte, 4096)
			rng.Read(data)
			f := fp.Of(data)
			if err := ctn.Add(f, data); err != nil {
				b.Fatal(err)
			}
			entries = append(entries, recipe.Entry{FP: f, Size: 4096, CID: int32(cid)})
		}
		if err := store.Put(ctn); err != nil {
			b.Fatal(err)
		}
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	for _, c := range allCaches() {
		b.Run(c.Name(), func(b *testing.B) {
			var total int64
			for _, e := range entries {
				total += int64(e.Size)
			}
			b.SetBytes(total)
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if _, err := c.Restore(context.Background(), entries, StoreFetcher(store), &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestChunkLRUSmallCapacityStillCorrect(t *testing.T) {
	store, entries, payloads := fixture(t, 4, 10, 2048)
	want := expected(entries, payloads)
	c := NewChunkLRU(4096) // tiny: most inserts evict immediately
	var buf bytes.Buffer
	if _, err := c.Restore(context.Background(), entries, StoreFetcher(store), &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("restored bytes differ under tiny cache")
	}
	_ = strconv.Itoa(0)
}
