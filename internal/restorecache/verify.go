package restorecache

import (
	"fmt"

	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// VerifyingFetcher wraps a Fetcher and recomputes every fetched chunk's
// fingerprint, failing loudly on any mismatch. Container files already
// carry CRCs against storage corruption; this guards the stronger
// end-to-end property that each chunk's *content* still matches the
// fingerprint its recipes reference — the dedup equivalent of a scrub.
type VerifyingFetcher struct {
	inner Fetcher
	// Verified counts chunks checked.
	Verified uint64
}

// NewVerifyingFetcher wraps fetch.
func NewVerifyingFetcher(fetch Fetcher) *VerifyingFetcher {
	return &VerifyingFetcher{inner: fetch}
}

// Get implements Fetcher.
func (v *VerifyingFetcher) Get(id container.ID) (*container.Container, error) {
	c, err := v.inner.Get(id)
	if err != nil {
		return nil, err
	}
	for _, f := range c.Fingerprints() {
		data, err := c.Get(f)
		if err != nil {
			return nil, fmt.Errorf("restorecache: verify container %d: %w", id, err)
		}
		if got := fp.Of(data); got != f {
			return nil, fmt.Errorf("restorecache: container %d chunk %s content hashes to %s",
				id, f.Short(), got.Short())
		}
		v.Verified++
	}
	return c, nil
}
