package restorecache

import (
	"context"
	"fmt"
	"sync/atomic"

	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// VerifyingFetcher wraps a Fetcher and recomputes every fetched chunk's
// fingerprint, failing loudly on any mismatch. Container files already
// carry CRCs against storage corruption; this guards the stronger
// end-to-end property that each chunk's *content* still matches the
// fingerprint its recipes reference — the dedup equivalent of a scrub.
//
// Get is safe for concurrent use (prefetch workers may call it in
// parallel) as long as the wrapped Fetcher is.
type VerifyingFetcher struct {
	inner Fetcher
	// verified counts chunks checked; read it via Chunks.
	verified atomic.Uint64
}

// NewVerifyingFetcher wraps fetch.
func NewVerifyingFetcher(fetch Fetcher) *VerifyingFetcher {
	return &VerifyingFetcher{inner: fetch}
}

// Chunks reports how many chunks have been verified so far.
func (v *VerifyingFetcher) Chunks() uint64 { return v.verified.Load() }

// Get implements Fetcher.
func (v *VerifyingFetcher) Get(ctx context.Context, id container.ID) (*container.Container, error) {
	c, err := v.inner.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	for _, f := range c.Fingerprints() {
		data, err := c.Get(f)
		if err != nil {
			return nil, fmt.Errorf("restorecache: verify container %d: %w", id, err)
		}
		if got := fp.Of(data); got != f {
			return nil, fmt.Errorf("restorecache: container %d chunk %s content hashes to %s",
				id, f.Short(), got.Short())
		}
		v.verified.Add(1)
	}
	return c, nil
}
