package restorecache

import (
	"bytes"
	"context"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
)

func TestVerifyingFetcherPassesGoodData(t *testing.T) {
	store, entries, payloads := fixture(t, 3, 5, 512)
	vf := NewVerifyingFetcher(StoreFetcher(store))
	var buf bytes.Buffer
	if _, err := NewFAA(1<<20).Restore(context.Background(), entries, vf, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), expected(entries, payloads)) {
		t.Fatal("bytes corrupted through verification")
	}
	if vf.Chunks() == 0 {
		t.Fatal("no chunks verified")
	}
}

func TestVerifyingFetcherDetectsMismatch(t *testing.T) {
	// Build a container whose chunk payload does not match its
	// fingerprint — the attack/corruption the verifier exists for.
	store := container.NewMemStore()
	evil := container.NewWithCapacity(1, container.DefaultCapacity)
	real := []byte("the chunk everyone expects")
	f := fp.Of(real)
	if err := evil.Add(f, []byte("something else entirely....")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(evil); err != nil {
		t.Fatal(err)
	}
	vf := NewVerifyingFetcher(StoreFetcher(store))
	if _, err := vf.Get(context.Background(), 1); err == nil {
		t.Fatal("fingerprint mismatch went undetected")
	}
}

func TestVerifyingFetcherPropagatesMissing(t *testing.T) {
	vf := NewVerifyingFetcher(StoreFetcher(container.NewMemStore()))
	if _, err := vf.Get(context.Background(), 42); err == nil {
		t.Fatal("missing container should fail")
	}
}
