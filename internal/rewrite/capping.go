package rewrite

import (
	"sort"

	"hidestore/internal/container"
)

// Capping implements the capping algorithm (Lillibridge et al., FAST'13).
// Each segment may reference at most Cap old containers: the containers
// contributing the most duplicate bytes to the segment are kept, and
// duplicates pointing at any other container are rewritten. This bounds
// the number of container reads a segment can ever cost at restore time,
// at the price of re-storing the rewritten duplicates.
type Capping struct {
	// Cap is the maximum number of distinct old containers a segment may
	// reference. The original paper explores caps of 10-20 per 20 MB
	// segment.
	Cap   int
	stats Stats
}

var _ Rewriter = (*Capping)(nil)

// NewCapping returns a capping rewriter with the given cap (default 10).
func NewCapping(cap int) *Capping {
	if cap <= 0 {
		cap = 10
	}
	return &Capping{Cap: cap}
}

// Name implements Rewriter.
func (c *Capping) Name() string { return "capping" }

// Plan implements Rewriter.
func (c *Capping) Plan(seg []Chunk) []bool {
	markDuplicates(&c.stats, seg)
	plan := make([]bool, len(seg))
	usage := containerUsage(seg)
	if len(usage) <= c.Cap {
		return plan
	}
	// Rank containers by contributed bytes; keep the top Cap.
	type ranked struct {
		cid   container.ID
		bytes uint64
	}
	order := make([]ranked, 0, len(usage))
	for cid, b := range usage {
		order = append(order, ranked{cid, b})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].bytes != order[j].bytes {
			return order[i].bytes > order[j].bytes
		}
		return order[i].cid > order[j].cid // newer container breaks ties
	})
	keep := make(map[container.ID]struct{}, c.Cap)
	for i := 0; i < c.Cap; i++ {
		keep[order[i].cid] = struct{}{}
	}
	for i, ch := range seg {
		if !ch.Duplicate || ch.CID == 0 {
			continue
		}
		if _, ok := keep[ch.CID]; !ok {
			plan[i] = true
		}
	}
	markRewrites(&c.stats, seg, plan)
	return plan
}

// Committed implements Rewriter.
func (c *Capping) Committed([]Chunk, []container.ID) {}

// EndVersion implements Rewriter.
func (c *Capping) EndVersion() {}

// Stats implements Rewriter.
func (c *Capping) Stats() Stats { return c.stats }
