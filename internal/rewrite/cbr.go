package rewrite

import "hidestore/internal/container"

// CBR implements Content-Based Rewriting (Kaczmarczyk et al., SYSTOR'12).
// For every duplicate, CBR estimates the *rewrite utility* of its
// container: the fraction of the container's capacity that the current
// segment actually uses. A container that the stream uses densely is worth
// reading at restore time; a container it uses sparsely forces a 4 MB read
// for a few KB of data, so its duplicates are rewritten. A byte budget
// (typically 5% of the stream) bounds the ratio loss per segment.
type CBR struct {
	// UtilityThreshold is the minimal fraction of a container the segment
	// must use for its duplicates to stay deduplicated. The original work
	// uses 0.7 as the "minimal rewrite utility".
	UtilityThreshold float64
	// BudgetFraction bounds rewritten bytes per segment as a fraction of
	// the segment's bytes. The original work uses 0.05.
	BudgetFraction float64
	// ContainerCapacity is the container size utilities are computed
	// against (default container.DefaultCapacity).
	ContainerCapacity int
	stats             Stats
}

var _ Rewriter = (*CBR)(nil)

// NewCBR returns a CBR rewriter with the original paper's parameters.
func NewCBR() *CBR {
	return &CBR{
		UtilityThreshold:  0.7,
		BudgetFraction:    0.05,
		ContainerCapacity: container.DefaultCapacity,
	}
}

// Name implements Rewriter.
func (c *CBR) Name() string { return "cbr" }

// Plan implements Rewriter.
func (c *CBR) Plan(seg []Chunk) []bool {
	markDuplicates(&c.stats, seg)
	plan := make([]bool, len(seg))
	usage := containerUsage(seg)
	var segBytes uint64
	for _, ch := range seg {
		segBytes += uint64(ch.Size)
	}
	budget := uint64(float64(segBytes) * c.BudgetFraction)
	var spent uint64
	// Rewrite duplicates from the sparsest-used containers first so the
	// budget buys the most locality: iterate chunks in order but check
	// utility per container.
	for i, ch := range seg {
		if !ch.Duplicate || ch.CID == 0 {
			continue
		}
		utility := float64(usage[ch.CID]) / float64(c.ContainerCapacity)
		if utility >= c.UtilityThreshold {
			continue
		}
		if spent+uint64(ch.Size) > budget {
			continue
		}
		plan[i] = true
		spent += uint64(ch.Size)
	}
	markRewrites(&c.stats, seg, plan)
	return plan
}

// Committed implements Rewriter.
func (c *CBR) Committed([]Chunk, []container.ID) {}

// EndVersion implements Rewriter.
func (c *CBR) EndVersion() {}

// Stats implements Rewriter.
func (c *CBR) Stats() Stats { return c.stats }
