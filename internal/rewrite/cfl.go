package rewrite

import "hidestore/internal/container"

// CFL implements Chunk-Fragmentation-Level-based selective deduplication
// (Nam et al.). The CFL of a stream prefix is the ratio of the *optimal*
// container count (stream bytes / container capacity, i.e. if the chunks
// were stored contiguously) to the number of containers actually
// referenced. CFL 1.0 means perfect physical locality; it decays toward 0
// as fragmentation grows. While the running CFL is above the threshold the
// scheme deduplicates normally; when it sinks below, it switches to
// selective rewriting — duplicates from containers that contribute little
// to the current segment are re-stored until the CFL recovers.
type CFL struct {
	// Threshold is the CFL below which selective rewriting engages.
	// The original work uses 0.6.
	Threshold float64
	// ContainerCapacity is the capacity used for the optimal count.
	ContainerCapacity int

	// Running per-version tallies.
	streamBytes   uint64
	referenced    map[container.ID]struct{}
	newContainers uint64
	stats         Stats
}

var _ Rewriter = (*CFL)(nil)

// NewCFL returns a CFL-based rewriter with threshold 0.6.
func NewCFL() *CFL {
	return &CFL{
		Threshold:         0.6,
		ContainerCapacity: container.DefaultCapacity,
		referenced:        make(map[container.ID]struct{}),
	}
}

// Name implements Rewriter.
func (c *CFL) Name() string { return "cfl" }

// Level returns the current chunk fragmentation level of the version
// being written (1.0 when nothing has been processed yet).
func (c *CFL) Level() float64 {
	actual := float64(len(c.referenced)) + float64(c.newContainers)
	if actual == 0 {
		return 1.0
	}
	optimal := float64(c.streamBytes) / float64(c.ContainerCapacity)
	level := optimal / actual
	if level > 1 {
		level = 1
	}
	return level
}

// Plan implements Rewriter.
func (c *CFL) Plan(seg []Chunk) []bool {
	markDuplicates(&c.stats, seg)
	plan := make([]bool, len(seg))
	usage := containerUsage(seg)

	// Account this segment into the running CFL before deciding, so the
	// decision reflects the stream up to and including this segment.
	var segBytes, uniqueBytes uint64
	for _, ch := range seg {
		segBytes += uint64(ch.Size)
		if !ch.Duplicate {
			uniqueBytes += uint64(ch.Size)
		}
	}
	c.streamBytes += segBytes
	for cid := range usage {
		c.referenced[cid] = struct{}{}
	}
	// Unique chunks land in fresh containers the stream will reference.
	c.newContainers += (uniqueBytes + uint64(c.ContainerCapacity) - 1) / uint64(c.ContainerCapacity)

	if c.Level() >= c.Threshold {
		return plan
	}
	// Selective rewrite: drop references to the containers contributing
	// the least to this segment (below the mean contribution).
	if len(usage) == 0 {
		return plan
	}
	var total uint64
	for _, b := range usage {
		total += b
	}
	mean := total / uint64(len(usage))
	for i, ch := range seg {
		if !ch.Duplicate || ch.CID == 0 {
			continue
		}
		// At or below the mean counts as a poor contributor: in the
		// pathological fully-uniform fragmented case every container is
		// poor and everything is rewritten, which is how CFL recovers.
		if usage[ch.CID] <= mean {
			plan[i] = true
		}
	}
	markRewrites(&c.stats, seg, plan)
	return plan
}

// Committed implements Rewriter.
func (c *CFL) Committed([]Chunk, []container.ID) {}

// EndVersion implements Rewriter: the CFL is tracked per backup version.
func (c *CFL) EndVersion() {
	c.streamBytes = 0
	c.newContainers = 0
	c.referenced = make(map[container.ID]struct{})
}

// Stats implements Rewriter.
func (c *CFL) Stats() Stats { return c.stats }
