package rewrite

import "hidestore/internal/container"

// FBW implements a sliding look-back-window rewriting scheme after Cao et
// al. (FAST'19), which the paper re-implemented because no source was
// released (§5.1). Capping judges a container only by the *current*
// segment; FBW remembers how much the last W segments drew from each
// container. A container that has been useful anywhere in the recent
// window is worth keeping even if the current segment touches it lightly,
// so FBW rewrites less than capping for the same restore locality. The cap
// adapts per segment: segments with many well-used containers get a wider
// allowance.
type FBW struct {
	// WindowSegments is the look-back window length W in segments.
	WindowSegments int
	// BaseCap is the capping threshold applied to window-cold containers.
	BaseCap int
	// MinWindowBytes is the window usage above which a container is
	// always kept regardless of the cap.
	MinWindowBytes uint64

	window []map[container.ID]uint64 // most recent last
	stats  Stats
}

var _ Rewriter = (*FBW)(nil)

// NewFBW returns an FBW rewriter with a 8-segment window and base cap 10.
func NewFBW() *FBW {
	return &FBW{WindowSegments: 8, BaseCap: 10, MinWindowBytes: 512 * 1024}
}

// Name implements Rewriter.
func (f *FBW) Name() string { return "fbw" }

// windowUsage sums per-container usage across the look-back window.
func (f *FBW) windowUsage() map[container.ID]uint64 {
	total := make(map[container.ID]uint64)
	for _, seg := range f.window {
		for cid, b := range seg {
			total[cid] += b
		}
	}
	return total
}

// Plan implements Rewriter.
func (f *FBW) Plan(seg []Chunk) []bool {
	markDuplicates(&f.stats, seg)
	plan := make([]bool, len(seg))
	usage := containerUsage(seg)

	past := f.windowUsage()
	// Containers warm in the window are kept outright.
	keep := make(map[container.ID]struct{})
	for cid := range usage {
		if past[cid]+usage[cid] >= f.MinWindowBytes {
			keep[cid] = struct{}{}
		}
	}
	// The remaining (cold) containers compete for the cap, best first.
	if cold := len(usage) - len(keep); cold > f.BaseCap {
		type ranked struct {
			cid   container.ID
			bytes uint64
		}
		order := make([]ranked, 0, cold)
		for cid, b := range usage {
			if _, ok := keep[cid]; !ok {
				order = append(order, ranked{cid, b + past[cid]})
			}
		}
		// Selection by insertion into a bounded best-list (cap is small).
		best := make([]ranked, 0, f.BaseCap)
		for _, r := range order {
			pos := len(best)
			for pos > 0 && (best[pos-1].bytes < r.bytes ||
				(best[pos-1].bytes == r.bytes && best[pos-1].cid < r.cid)) {
				pos--
			}
			if pos < f.BaseCap {
				if len(best) < f.BaseCap {
					best = append(best, ranked{})
				}
				copy(best[pos+1:], best[pos:])
				best[pos] = r
			}
		}
		for _, r := range best {
			keep[r.cid] = struct{}{}
		}
		for i, ch := range seg {
			if !ch.Duplicate || ch.CID == 0 {
				continue
			}
			if _, ok := keep[ch.CID]; !ok {
				plan[i] = true
			}
		}
	}
	// Slide the window.
	f.window = append(f.window, usage)
	if len(f.window) > f.WindowSegments {
		f.window = f.window[1:]
	}
	markRewrites(&f.stats, seg, plan)
	return plan
}

// Committed implements Rewriter.
func (f *FBW) Committed([]Chunk, []container.ID) {}

// EndVersion implements Rewriter: the look-back window does not span
// backup versions.
func (f *FBW) EndVersion() { f.window = nil }

// Stats implements Rewriter.
func (f *FBW) Stats() Stats { return f.stats }
