package rewrite

import "hidestore/internal/container"

// HAR implements History-Aware Rewriting (Fu et al., USENIX ATC'14 /
// destor). HAR observes that fragmentation is inherited: the containers
// that served a backup sparsely in version n will serve version n+1
// sparsely too, because adjacent versions are highly similar. After each
// version it computes every referenced container's *utilization* for that
// stream (bytes drawn / container capacity) and records the sparse ones;
// during the next version, every duplicate whose copy sits in a
// previously-sparse container is rewritten, collapsing the sparse
// containers' live data into fresh dense ones.
type HAR struct {
	// SparseThreshold is the utilization below which a container is
	// declared sparse. Destor's default is 0.5.
	SparseThreshold float64
	// ContainerCapacity is the capacity utilizations are computed
	// against.
	ContainerCapacity int

	// sparse holds the containers declared sparse by the previous version.
	sparse map[container.ID]struct{}
	// usage accumulates the current version's per-container usage.
	usage map[container.ID]uint64
	stats Stats
}

var _ Rewriter = (*HAR)(nil)

// NewHAR returns a HAR rewriter with destor's 0.5 sparse threshold.
func NewHAR() *HAR {
	return &HAR{
		SparseThreshold:   0.5,
		ContainerCapacity: container.DefaultCapacity,
		sparse:            make(map[container.ID]struct{}),
		usage:             make(map[container.ID]uint64),
	}
}

// Name implements Rewriter.
func (h *HAR) Name() string { return "har" }

// Plan implements Rewriter.
func (h *HAR) Plan(seg []Chunk) []bool {
	markDuplicates(&h.stats, seg)
	plan := make([]bool, len(seg))
	for i, ch := range seg {
		if !ch.Duplicate || ch.CID == 0 {
			continue
		}
		if _, isSparse := h.sparse[ch.CID]; isSparse {
			plan[i] = true
		}
	}
	markRewrites(&h.stats, seg, plan)
	return plan
}

// Committed implements Rewriter: accumulate the version's container usage.
// Rewritten duplicates count toward their *new* container, so a rewritten
// region stops inheriting sparseness.
func (h *HAR) Committed(seg []Chunk, cids []container.ID) {
	for i, ch := range seg {
		if i >= len(cids) || cids[i] == 0 {
			continue
		}
		h.usage[cids[i]] += uint64(ch.Size)
	}
}

// EndVersion implements Rewriter: classify this version's containers and
// reset for the next.
func (h *HAR) EndVersion() {
	h.sparse = make(map[container.ID]struct{})
	for cid, bytes := range h.usage {
		if float64(bytes)/float64(h.ContainerCapacity) < h.SparseThreshold {
			h.sparse[cid] = struct{}{}
		}
	}
	h.usage = make(map[container.ID]uint64)
}

// SparseContainers returns how many containers the last version declared
// sparse (test hook).
func (h *HAR) SparseContainers() int { return len(h.sparse) }

// Stats implements Rewriter.
func (h *HAR) Stats() Stats { return h.stats }
