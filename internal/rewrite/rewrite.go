// Package rewrite implements the duplicate-rewriting schemes the paper
// compares HiDeStore against (§2.3, §5): Capping, CBR, CFL-based selective
// rewriting, FBW (sliding look-back window) and HAR (history-aware
// rewriting).
//
// Rewriting attacks chunk fragmentation from the write path: a duplicate
// chunk whose existing copy lives in a container that contributes little
// to the current stream is stored *again* in a fresh container, so the
// stream's chunks end up physically closer. The cost is exactly what the
// paper criticizes: every rewritten duplicate is stored twice, so the
// deduplication ratio drops (Figure 8), and more and more chunks must be
// rewritten as fragmentation grows over versions.
//
// A Rewriter inspects one segment of classified chunks at a time and
// returns, per chunk, whether the engine should rewrite it. Rewriters see
// duplicates with their existing container IDs, mirroring the information
// a destor-style pipeline has at the rewrite phase.
package rewrite

import (
	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// Chunk is the rewrite phase's view of one classified chunk.
type Chunk struct {
	FP   fp.FP
	Size uint32
	// Duplicate reports the index's classification.
	Duplicate bool
	// CID is the container holding the existing copy of a duplicate
	// (0 when unique or when the duplicate is pending in this session).
	CID container.ID
}

// Stats counts rewrite activity. RewrittenBytes is the extra space a
// scheme burns — the quantity behind Figure 8's ratio loss.
type Stats struct {
	Duplicates      uint64
	Rewritten       uint64
	RewrittenBytes  uint64
	DuplicateBytes  uint64
	SegmentsPlanned uint64
}

// Rewriter decides which duplicates to rewrite.
type Rewriter interface {
	// Name identifies the scheme ("none", "capping", "cbr", "cfl", "fbw",
	// "har").
	Name() string
	// Plan returns a slice the same length as seg; true at i means seg[i]
	// (which must be a duplicate) should be rewritten.
	Plan(seg []Chunk) []bool
	// Committed tells the rewriter the final placement of the segment's
	// chunks, so history-based schemes can track container usage.
	Committed(seg []Chunk, cids []container.ID)
	// EndVersion marks a backup-version boundary.
	EndVersion()
	// Stats returns cumulative counters.
	Stats() Stats
}

// New returns a default-configured rewriter by scheme name.
func New(name string) (Rewriter, error) {
	switch name {
	case "none", "":
		return NewNone(), nil
	case "capping":
		return NewCapping(0), nil
	case "cbr":
		return NewCBR(), nil
	case "cfl":
		return NewCFL(), nil
	case "fbw":
		return NewFBW(), nil
	case "har":
		return NewHAR(), nil
	default:
		return nil, &UnknownSchemeError{Name: name}
	}
}

// UnknownSchemeError reports an unrecognized rewriter name.
type UnknownSchemeError struct{ Name string }

func (e *UnknownSchemeError) Error() string {
	return "rewrite: unknown scheme " + e.Name
}

// None never rewrites: the exact-deduplication baseline whose restore
// performance degrades fastest (Figure 11 "baseline").
type None struct {
	stats Stats
}

var _ Rewriter = (*None)(nil)

// NewNone returns the no-rewrite baseline.
func NewNone() *None { return &None{} }

// Name implements Rewriter.
func (n *None) Name() string { return "none" }

// Plan implements Rewriter.
func (n *None) Plan(seg []Chunk) []bool {
	n.stats.SegmentsPlanned++
	for _, c := range seg {
		if c.Duplicate {
			n.stats.Duplicates++
			n.stats.DuplicateBytes += uint64(c.Size)
		}
	}
	return make([]bool, len(seg))
}

// Committed implements Rewriter.
func (n *None) Committed([]Chunk, []container.ID) {}

// EndVersion implements Rewriter.
func (n *None) EndVersion() {}

// Stats implements Rewriter.
func (n *None) Stats() Stats { return n.stats }

// markDuplicates tallies duplicate counters shared by all schemes.
func markDuplicates(st *Stats, seg []Chunk) {
	st.SegmentsPlanned++
	for _, c := range seg {
		if c.Duplicate {
			st.Duplicates++
			st.DuplicateBytes += uint64(c.Size)
		}
	}
}

// markRewrites tallies the planned rewrites in plan.
func markRewrites(st *Stats, seg []Chunk, plan []bool) {
	for i, rw := range plan {
		if rw {
			st.Rewritten++
			st.RewrittenBytes += uint64(seg[i].Size)
		}
	}
}

// containerUsage sums, per referenced container, the bytes the segment's
// duplicates draw from it.
func containerUsage(seg []Chunk) map[container.ID]uint64 {
	usage := make(map[container.ID]uint64)
	for _, c := range seg {
		if c.Duplicate && c.CID != 0 {
			usage[c.CID] += uint64(c.Size)
		}
	}
	return usage
}
