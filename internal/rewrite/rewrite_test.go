package rewrite

import (
	"strconv"
	"testing"

	"hidestore/internal/container"
	"hidestore/internal/fp"
)

// dupChunk builds a duplicate chunk of size bytes living in cid.
func dupChunk(name string, size uint32, cid container.ID) Chunk {
	return Chunk{FP: fp.Of([]byte(name)), Size: size, Duplicate: true, CID: cid}
}

func uniqueChunk(name string, size uint32) Chunk {
	return Chunk{FP: fp.Of([]byte(name)), Size: size}
}

// segSpread builds a segment with n duplicates spread across k containers.
func segSpread(n, k int, size uint32) []Chunk {
	seg := make([]Chunk, n)
	for i := range seg {
		seg[i] = dupChunk("spread-"+strconv.Itoa(i), size, container.ID(i%k+1))
	}
	return seg
}

func countTrue(plan []bool) int {
	n := 0
	for _, b := range plan {
		if b {
			n++
		}
	}
	return n
}

func TestNewFactory(t *testing.T) {
	for _, name := range []string{"none", "capping", "cbr", "cfl", "fbw", "har"} {
		r, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("Name = %q, want %q", r.Name(), name)
		}
	}
	if r, err := New(""); err != nil || r.Name() != "none" {
		t.Fatal("empty name should yield the none rewriter")
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestNoneNeverRewrites(t *testing.T) {
	r := NewNone()
	seg := segSpread(100, 50, 4096)
	plan := r.Plan(seg)
	if countTrue(plan) != 0 {
		t.Fatal("none rewrote chunks")
	}
	st := r.Stats()
	if st.Duplicates != 100 || st.Rewritten != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCappingUnderCapUntouched(t *testing.T) {
	r := NewCapping(10)
	seg := segSpread(100, 10, 4096) // exactly 10 containers
	if countTrue(r.Plan(seg)) != 0 {
		t.Fatal("segment within cap must not be rewritten")
	}
}

func TestCappingEnforcesCap(t *testing.T) {
	r := NewCapping(5)
	// 20 containers referenced; container i contributes i+1 chunks so the
	// ranking is deterministic: containers 16..20 (by contribution) kept.
	var seg []Chunk
	for cid := 1; cid <= 20; cid++ {
		for j := 0; j <= cid; j++ {
			seg = append(seg, dupChunk("c"+strconv.Itoa(cid)+"-"+strconv.Itoa(j), 4096, container.ID(cid)))
		}
	}
	plan := r.Plan(seg)
	// Surviving containers must number exactly Cap.
	kept := make(map[container.ID]struct{})
	for i, ch := range seg {
		if !plan[i] {
			kept[ch.CID] = struct{}{}
		}
	}
	if len(kept) != 5 {
		t.Fatalf("kept %d containers, want 5", len(kept))
	}
	// The kept ones are the top contributors (16..20).
	for cid := container.ID(16); cid <= 20; cid++ {
		if _, ok := kept[cid]; !ok {
			t.Fatalf("top contributor %d was rewritten", cid)
		}
	}
	if r.Stats().Rewritten == 0 {
		t.Fatal("stats should record rewrites")
	}
}

func TestCappingIgnoresUniquesAndPending(t *testing.T) {
	r := NewCapping(1)
	seg := []Chunk{
		uniqueChunk("u1", 4096),
		dupChunk("d-pending", 4096, 0), // intra-session duplicate
		dupChunk("d1", 4096, 1),
		dupChunk("d2", 4096, 2),
	}
	plan := r.Plan(seg)
	if plan[0] || plan[1] {
		t.Fatal("uniques and pending duplicates must never be rewritten")
	}
	if countTrue(plan) != 1 {
		t.Fatalf("want exactly 1 rewrite, got %d", countTrue(plan))
	}
}

func TestCBRRewritesSparseContainers(t *testing.T) {
	r := NewCBR()
	r.ContainerCapacity = 100 * 4096 // utility denominator
	// Container 1: densely used (80 chunks => utility 0.8 >= 0.7).
	// Container 2: sparsely used (2 chunks => utility 0.02).
	var seg []Chunk
	for i := 0; i < 80; i++ {
		seg = append(seg, dupChunk("dense-"+strconv.Itoa(i), 4096, 1))
	}
	seg = append(seg, dupChunk("sparse-a", 4096, 2), dupChunk("sparse-b", 4096, 2))
	plan := r.Plan(seg)
	for i := 0; i < 80; i++ {
		if plan[i] {
			t.Fatal("dense container duplicate rewritten")
		}
	}
	if !plan[80] || !plan[81] {
		t.Fatal("sparse container duplicates should be rewritten")
	}
}

func TestCBRBudgetBound(t *testing.T) {
	r := NewCBR()
	r.ContainerCapacity = 1 << 30 // everything looks sparse
	seg := segSpread(100, 100, 4096)
	plan := r.Plan(seg)
	var segBytes, rewritten uint64
	for i, ch := range seg {
		segBytes += uint64(ch.Size)
		if plan[i] {
			rewritten += uint64(ch.Size)
		}
	}
	if rewritten == 0 {
		t.Fatal("expected some rewrites")
	}
	if float64(rewritten) > 0.05*float64(segBytes) {
		t.Fatalf("rewrote %d bytes, budget is 5%% of %d", rewritten, segBytes)
	}
}

func TestCFLLevelPerfectWhenDense(t *testing.T) {
	r := NewCFL()
	r.ContainerCapacity = 10 * 4096
	// All chunks unique: stream is stored contiguously, CFL stays 1.
	var seg []Chunk
	for i := 0; i < 100; i++ {
		seg = append(seg, uniqueChunk("u"+strconv.Itoa(i), 4096))
	}
	plan := r.Plan(seg)
	if countTrue(plan) != 0 {
		t.Fatal("dense stream must not trigger rewrites")
	}
	if lvl := r.Level(); lvl < 0.9 {
		t.Fatalf("Level = %v, want near 1", lvl)
	}
}

func TestCFLRewritesWhenFragmented(t *testing.T) {
	r := NewCFL()
	r.ContainerCapacity = 1000 * 4096
	// 100 duplicates scattered over 50 containers: optimal would be ~0.1
	// containers, actual 50 → CFL ≈ 0. Selective rewriting engages.
	seg := segSpread(100, 50, 4096)
	plan := r.Plan(seg)
	if lvl := r.Level(); lvl >= r.Threshold {
		t.Fatalf("Level = %v, expected below threshold %v", lvl, r.Threshold)
	}
	if countTrue(plan) == 0 {
		t.Fatal("fragmented stream should trigger rewrites")
	}
}

func TestCFLEndVersionResets(t *testing.T) {
	r := NewCFL()
	r.ContainerCapacity = 1000 * 4096
	r.Plan(segSpread(100, 50, 4096))
	r.EndVersion()
	if lvl := r.Level(); lvl != 1.0 {
		t.Fatalf("Level after EndVersion = %v, want 1.0", lvl)
	}
}

func TestFBWKeepsWindowWarmContainers(t *testing.T) {
	f := NewFBW()
	f.BaseCap = 2
	f.MinWindowBytes = 10 * 4096
	// Segment 1 uses container 1 heavily (warm).
	var seg1 []Chunk
	for i := 0; i < 20; i++ {
		seg1 = append(seg1, dupChunk("w"+strconv.Itoa(i), 4096, 1))
	}
	f.Plan(seg1)
	// Segment 2 touches container 1 lightly plus many cold containers.
	var seg2 []Chunk
	seg2 = append(seg2, dupChunk("light", 4096, 1))
	for cid := 2; cid <= 10; cid++ {
		seg2 = append(seg2, dupChunk("cold"+strconv.Itoa(cid), 4096, container.ID(cid)))
	}
	plan := f.Plan(seg2)
	if plan[0] {
		t.Fatal("window-warm container 1 must be kept")
	}
	// Cold containers exceed BaseCap=2 → some rewritten.
	if countTrue(plan) != len(seg2)-1-2 {
		t.Fatalf("rewrites = %d, want %d", countTrue(plan), len(seg2)-3)
	}
}

func TestFBWWindowSlides(t *testing.T) {
	f := NewFBW()
	f.WindowSegments = 2
	for i := 0; i < 5; i++ {
		f.Plan(segSpread(10, 2, 4096))
	}
	if len(f.window) != 2 {
		t.Fatalf("window length %d, want 2", len(f.window))
	}
	f.EndVersion()
	if f.window != nil {
		t.Fatal("EndVersion should clear the window")
	}
}

func TestHARFirstVersionNoRewrites(t *testing.T) {
	h := NewHAR()
	seg := segSpread(100, 50, 4096)
	if countTrue(h.Plan(seg)) != 0 {
		t.Fatal("HAR has no history in the first version")
	}
}

func TestHARRewritesInheritedSparseContainers(t *testing.T) {
	h := NewHAR()
	h.ContainerCapacity = 100 * 4096
	// Version 1: container 1 used densely (60%), container 2 sparsely (2%).
	var seg []Chunk
	cids := make([]container.ID, 0, 62)
	for i := 0; i < 60; i++ {
		seg = append(seg, dupChunk("d"+strconv.Itoa(i), 4096, 1))
		cids = append(cids, 1)
	}
	seg = append(seg, dupChunk("s1", 4096, 2), dupChunk("s2", 4096, 2))
	cids = append(cids, 2, 2)
	h.Plan(seg)
	h.Committed(seg, cids)
	h.EndVersion()
	if h.SparseContainers() != 1 {
		t.Fatalf("SparseContainers = %d, want 1", h.SparseContainers())
	}
	// Version 2 references both containers again.
	seg2 := []Chunk{dupChunk("x", 4096, 1), dupChunk("y", 4096, 2)}
	plan := h.Plan(seg2)
	if plan[0] {
		t.Fatal("dense container should not be rewritten")
	}
	if !plan[1] {
		t.Fatal("sparse container duplicate should be rewritten")
	}
}

func TestHARRewrittenChunksCountTowardNewContainer(t *testing.T) {
	h := NewHAR()
	h.ContainerCapacity = 10 * 4096
	// Chunks originally in sparse container 5, rewritten into container 9
	// which becomes dense — so 9 must not be sparse next version.
	var seg []Chunk
	cids := make([]container.ID, 0, 10)
	for i := 0; i < 10; i++ {
		seg = append(seg, dupChunk("r"+strconv.Itoa(i), 4096, 5))
		cids = append(cids, 9)
	}
	h.Committed(seg, cids)
	h.EndVersion()
	if h.SparseContainers() != 0 {
		t.Fatalf("container 9 is dense; SparseContainers = %d", h.SparseContainers())
	}
}

func TestStatsAccumulation(t *testing.T) {
	r := NewCapping(1)
	seg := segSpread(10, 5, 1000)
	r.Plan(seg)
	st := r.Stats()
	if st.Duplicates != 10 {
		t.Fatalf("Duplicates = %d", st.Duplicates)
	}
	if st.DuplicateBytes != 10000 {
		t.Fatalf("DuplicateBytes = %d", st.DuplicateBytes)
	}
	if st.SegmentsPlanned != 1 {
		t.Fatalf("SegmentsPlanned = %d", st.SegmentsPlanned)
	}
	if st.RewrittenBytes != uint64(st.Rewritten)*1000 {
		t.Fatalf("RewrittenBytes inconsistent: %+v", st)
	}
}
