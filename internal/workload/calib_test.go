package workload

import (
	"io"
	"testing"

	"hidestore/internal/chunker"
	"hidestore/internal/fp"
)

// TestPresetDedupRatiosMatchTable1 runs every preset end to end under
// exact deduplication and checks the cumulative dedup ratio lands within a
// few points of the paper's Table 1. This is the calibration contract the
// experiment harness depends on.
func TestPresetDedupRatiosMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-preset calibration is slow; run without -short")
	}
	want := map[string]float64{
		"kernel":   0.9153,
		"gcc":      0.7875,
		"fslhomes": 0.9217,
		"macos":    0.8956,
	}
	const tolerance = 0.03
	for _, name := range PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg, err := Preset(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			g, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			params := chunker.DefaultParams()
			seen := make(map[fp.FP]bool)
			var logical, unique uint64
			for g.HasNext() {
				r, err := g.NextVersion()
				if err != nil {
					t.Fatal(err)
				}
				data, err := io.ReadAll(r)
				if err != nil {
					t.Fatal(err)
				}
				chunks, err := chunker.Split(chunker.FastCDC, data, params)
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range chunks {
					f := fp.Of(c)
					logical += uint64(len(c))
					if !seen[f] {
						seen[f] = true
						unique += uint64(len(c))
					}
				}
			}
			got := 1 - float64(unique)/float64(logical)
			t.Logf("%s: dedup ratio %.4f (Table 1: %.4f)", name, got, want[name])
			if got < want[name]-tolerance || got > want[name]+tolerance {
				t.Errorf("dedup ratio %.4f outside ±%.0f points of Table 1's %.4f",
					got, tolerance*100, want[name])
			}
		})
	}
}
