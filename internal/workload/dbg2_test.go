package workload

import (
	"io"
	"testing"

	"hidestore/internal/chunker"
	"hidestore/internal/fp"
)

func TestDebugScale(t *testing.T) {
	cfg := Config{Name: "t", Versions: 10, Files: 64, BlocksPerFile: 12, BlockSize: 8192,
		ModifyRate: 0.06, InsertRate: 0.006, DeleteRate: 0.003, FileChurn: 0.02, Seed: 42}
	g, _ := New(cfg)
	params := chunker.Params{Min: 2048, Avg: 4096, Max: 16384}
	var sets []map[fp.FP]int
	for v := 1; v <= 10; v++ {
		r, _ := g.NextVersion()
		data, _ := io.ReadAll(r)
		chunks, _ := chunker.Split(chunker.FastCDC, data, params)
		set := make(map[fp.FP]int)
		for _, c := range chunks {
			set[fp.Of(c)] += len(c)
		}
		sets = append(sets, set)
	}
	// adjacent redundancy v1-v2
	var shared, total int
	for f, sz := range sets[1] {
		total += sz
		if _, ok := sets[0][f]; ok {
			shared += sz
		}
	}
	t.Logf("adjacent redundancy: %.3f", float64(shared)/float64(total))
	departed, returned := 0, 0
	for f := range sets[1] {
		if _, ok := sets[2][f]; ok {
			continue
		}
		departed++
		for v := 3; v < 10; v++ {
			if _, ok := sets[v][f]; ok {
				returned++
				break
			}
		}
	}
	t.Logf("departed %d, returned %d (%.1f%%)", departed, returned, 100*float64(returned)/float64(departed))
}
