// Package workload generates synthetic versioned backup streams that
// stand in for the paper's datasets (Table 1: linux-kernel, gcc, fslhomes,
// macos), which are multi-hundred-GB corpora we cannot ship.
//
// The generator models a project as a set of files made of content blocks.
// Each backup version mutates the previous one the way software releases
// and user homedirs do: some blocks are overwritten with brand-new
// content, some files grow, new files appear, old files disappear. Block
// content is a pure function of a 64-bit seed, so:
//
//   - unchanged blocks reproduce byte-identical regions → duplicate chunks
//     across versions (the ~90 % adjacent-version redundancy of Table 1);
//   - overwritten blocks get fresh seeds that are never reused → chunks
//     that leave the stream do not come back, which is exactly the
//     Figure 3 observation HiDeStore is built on;
//   - the macos preset sets FlapRate > 0, making some blocks skip one
//     version and return — the Figure 3d anomaly that forces HiDeStore's
//     two-version fingerprint-cache window.
//
// Everything is deterministic given Config.Seed: the same configuration
// yields the same byte streams on every machine, which makes the
// experiment harness reproducible.
package workload

import (
	"fmt"
	"io"
	"math/rand"
)

// Config describes a synthetic dataset.
type Config struct {
	// Name labels the workload in reports.
	Name string
	// Versions is how many backup versions the generator will produce.
	Versions int
	// Files is the number of files in version 1.
	Files int
	// BlocksPerFile is the mean number of content blocks per file.
	BlocksPerFile int
	// BlockSize is the mean block size in bytes (blocks vary ±50 %).
	BlockSize int
	// ModifyRate is the per-version probability that a block is
	// overwritten with new content.
	ModifyRate float64
	// InsertRate is the per-version probability that a new block is
	// inserted after an existing one (shifts the rest of the file, which
	// is what content-defined chunking exists to absorb).
	InsertRate float64
	// DeleteRate is the per-version probability that a block is removed.
	DeleteRate float64
	// FileChurn is the per-version fraction of files added and removed.
	FileChurn float64
	// FlapRate is the per-version probability that a block goes missing
	// for exactly one version and then returns (macos-style).
	FlapRate float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	switch {
	case c.Versions <= 0:
		return fmt.Errorf("workload: Versions must be positive, got %d", c.Versions)
	case c.Files <= 0 || c.BlocksPerFile <= 0 || c.BlockSize <= 0:
		return fmt.Errorf("workload: Files/BlocksPerFile/BlockSize must be positive")
	case c.ModifyRate < 0 || c.ModifyRate > 1:
		return fmt.Errorf("workload: ModifyRate %v out of [0,1]", c.ModifyRate)
	case c.InsertRate < 0 || c.InsertRate > 1:
		return fmt.Errorf("workload: InsertRate %v out of [0,1]", c.InsertRate)
	case c.DeleteRate < 0 || c.DeleteRate > 1:
		return fmt.Errorf("workload: DeleteRate %v out of [0,1]", c.DeleteRate)
	case c.FileChurn < 0 || c.FileChurn > 1:
		return fmt.Errorf("workload: FileChurn %v out of [0,1]", c.FileChurn)
	case c.FlapRate < 0 || c.FlapRate > 1:
		return fmt.Errorf("workload: FlapRate %v out of [0,1]", c.FlapRate)
	case c.DeleteRate+c.ModifyRate+c.FlapRate > 1:
		return fmt.Errorf("workload: Delete+Modify+Flap rates exceed 1")
	default:
		return nil
	}
}

// VersionBytes estimates the mean bytes per version.
func (c Config) VersionBytes() int64 {
	return int64(c.Files) * int64(c.BlocksPerFile) * int64(c.BlockSize)
}

// Preset returns the named dataset configuration, scaled so one version is
// roughly scaleMB megabytes (the paper's versions are 0.4-50 GB; the
// defaults here keep full multi-version runs laptop-sized while preserving
// each dataset's redundancy structure). Valid names: "kernel", "gcc",
// "fslhomes", "macos".
func Preset(name string, scaleMB int) (Config, error) {
	if scaleMB <= 0 {
		scaleMB = 8
	}
	base := Config{
		Name:          name,
		BlockSize:     8 * 1024,
		BlocksPerFile: 16,
		Seed:          0x4D494444, // "MIDD"
	}
	switch name {
	case "kernel":
		// 158 versions, 91.5 % dedup ratio: low churn, steady point
		// releases. Rates calibrated so a full run of the generator
		// reproduces Table 1's ratio within ~1 point.
		base.Versions = 158
		base.ModifyRate = 0.030
		base.InsertRate = 0.003
		base.DeleteRate = 0.002
		base.FileChurn = 0.008
	case "gcc":
		// 175 versions, 78.8 % dedup ratio: the fastest-moving dataset.
		base.Versions = 175
		base.ModifyRate = 0.095
		base.InsertRate = 0.008
		base.DeleteRate = 0.004
		base.FileChurn = 0.02
	case "fslhomes":
		// 102 versions, 92.2 % dedup ratio: user homedir snapshots.
		base.Versions = 102
		base.ModifyRate = 0.022
		base.InsertRate = 0.004
		base.DeleteRate = 0.002
		base.FileChurn = 0.010
	case "macos":
		// 25 versions, 89.6 % dedup ratio, and changes that straddle two
		// versions (Figure 3d) — the FlapRate is what distinguishes it.
		base.Versions = 25
		base.ModifyRate = 0.020
		base.InsertRate = 0.003
		base.DeleteRate = 0.002
		base.FileChurn = 0.008
		base.FlapRate = 0.02
	default:
		return Config{}, fmt.Errorf("workload: unknown preset %q", name)
	}
	base.Files = scaleMB * (1 << 20) / (base.BlocksPerFile * base.BlockSize)
	if base.Files < 4 {
		base.Files = 4
	}
	return base, nil
}

// PresetNames lists the available presets in the paper's Table 1 order.
func PresetNames() []string { return []string{"kernel", "gcc", "fslhomes", "macos"} }

// block is one content region. Its bytes are a pure function of (seed,
// size).
type block struct {
	seed uint64
	size int
	// flapped marks a block absent from the current version only.
	flapped bool
}

// file is an ordered list of blocks.
type file struct {
	id     uint64
	blocks []block
}

// Generator produces successive version streams. Not safe for concurrent
// use.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	files    []*file
	nextSeed uint64
	version  int
}

// New creates a generator positioned before version 1.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nextSeed: 1,
	}
	for i := 0; i < cfg.Files; i++ {
		g.files = append(g.files, g.newFile())
	}
	return g, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Version returns the number of the most recently generated version
// (0 before the first NextVersion call).
func (g *Generator) Version() int { return g.version }

// HasNext reports whether more versions remain.
func (g *Generator) HasNext() bool { return g.version < g.cfg.Versions }

func (g *Generator) newFile() *file {
	n := g.cfg.BlocksPerFile/2 + g.rng.Intn(g.cfg.BlocksPerFile+1)
	if n < 1 {
		n = 1
	}
	f := &file{id: uint64(g.rng.Int63())}
	f.blocks = make([]block, n)
	for i := range f.blocks {
		f.blocks[i] = g.newBlock()
	}
	return f
}

func (g *Generator) newBlock() block {
	g.nextSeed++
	size := g.cfg.BlockSize/2 + g.rng.Intn(g.cfg.BlockSize+1)
	if size < 64 {
		size = 64
	}
	return block{seed: g.nextSeed, size: size}
}

// NextVersion mutates the dataset into its next version and returns a
// reader for that version's backup stream. The reader must be fully
// consumed before the next call.
func (g *Generator) NextVersion() (io.Reader, error) {
	if !g.HasNext() {
		return nil, fmt.Errorf("workload: all %d versions generated", g.cfg.Versions)
	}
	g.version++
	if g.version > 1 {
		g.mutate()
	}
	return newStream(g.files), nil
}

// mutate applies one version's worth of changes.
func (g *Generator) mutate() {
	// File churn: remove and add whole files.
	churn := int(float64(len(g.files)) * g.cfg.FileChurn)
	for i := 0; i < churn && len(g.files) > 1; i++ {
		victim := g.rng.Intn(len(g.files))
		g.files = append(g.files[:victim], g.files[victim+1:]...)
	}
	for i := 0; i < churn; i++ {
		g.files = append(g.files, g.newFile())
	}
	// Block-level edits.
	for _, f := range g.files {
		// A fresh slice: appending in place would let insertions overtake
		// the read cursor and corrupt blocks not yet visited.
		out := make([]block, 0, len(f.blocks)+4)
		for _, b := range f.blocks {
			// A block that flapped last version returns now.
			if b.flapped {
				b.flapped = false
				out = append(out, b)
				continue
			}
			r := g.rng.Float64()
			switch {
			case r < g.cfg.DeleteRate:
				continue // block gone for good
			case r < g.cfg.DeleteRate+g.cfg.ModifyRate:
				out = append(out, g.newBlock()) // fresh content, new seed
			case r < g.cfg.DeleteRate+g.cfg.ModifyRate+g.cfg.FlapRate:
				b.flapped = true // absent this version, back next version
				out = append(out, b)
			default:
				out = append(out, b)
			}
			if g.rng.Float64() < g.cfg.InsertRate {
				out = append(out, g.newBlock())
			}
		}
		f.blocks = out
		if len(f.blocks) == 0 {
			f.blocks = []block{g.newBlock()}
		}
	}
}

// stream lazily materializes a version's bytes.
type stream struct {
	blocks []block
	cur    int
	rng    *rand.Rand
	remain int
}

func newStream(files []*file) *stream {
	var blocks []block
	for _, f := range files {
		for _, b := range f.blocks {
			if !b.flapped {
				blocks = append(blocks, b)
			}
		}
	}
	return &stream{blocks: blocks, cur: -1}
}

// Read implements io.Reader, generating block bytes on demand.
func (s *stream) Read(p []byte) (int, error) {
	for s.remain == 0 {
		s.cur++
		if s.cur >= len(s.blocks) {
			return 0, io.EOF
		}
		b := s.blocks[s.cur]
		s.rng = rand.New(rand.NewSource(int64(b.seed)))
		s.remain = b.size
	}
	n := len(p)
	if n > s.remain {
		n = s.remain
	}
	s.rng.Read(p[:n])
	s.remain -= n
	return n, nil
}
