package workload

import (
	"bytes"
	"io"
	"testing"

	"hidestore/internal/chunker"
	"hidestore/internal/fp"
)

func smallConfig() Config {
	return Config{
		Name:          "test",
		Versions:      6,
		Files:         32,
		BlocksPerFile: 12,
		BlockSize:     8192,
		ModifyRate:    0.05,
		InsertRate:    0.004,
		DeleteRate:    0.002,
		FileChurn:     0.01,
		Seed:          42,
	}
}

func readAll(t *testing.T, g *Generator) []byte {
	t.Helper()
	r, err := g.NextVersion()
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero versions", func(c *Config) { c.Versions = 0 }},
		{"zero files", func(c *Config) { c.Files = 0 }},
		{"negative modify", func(c *Config) { c.ModifyRate = -0.1 }},
		{"modify > 1", func(c *Config) { c.ModifyRate = 1.5 }},
		{"churn > 1", func(c *Config) { c.FileChurn = 2 }},
		{"rates sum > 1", func(c *Config) { c.ModifyRate, c.DeleteRate, c.FlapRate = 0.5, 0.4, 0.2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if err := smallConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	g1, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		a := readAll(t, g1)
		b := readAll(t, g2)
		if !bytes.Equal(a, b) {
			t.Fatalf("version %d differs between identical generators", v+1)
		}
		if len(a) == 0 {
			t.Fatalf("version %d is empty", v+1)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfgA := smallConfig()
	cfgB := smallConfig()
	cfgB.Seed = 43
	ga, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(readAll(t, ga), readAll(t, gb)) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestAdjacentVersionRedundancy verifies the central workload property:
// consecutive versions share most of their chunks, and redundancy between
// version 1 and a far-later version decays.
func TestAdjacentVersionRedundancy(t *testing.T) {
	cfg := smallConfig()
	cfg.Versions = 10
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := chunker.Params{Min: 1024, Avg: 4096, Max: 16384}
	chunkSet := func(data []byte) map[fp.FP]int {
		chunks, err := chunker.Split(chunker.FastCDC, data, params)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[fp.FP]int)
		for _, c := range chunks {
			set[fp.Of(c)] += len(c)
		}
		return set
	}
	overlap := func(a, b map[fp.FP]int) float64 {
		var shared, total int
		for f, sz := range b {
			total += sz
			if _, ok := a[f]; ok {
				shared += sz
			}
		}
		return float64(shared) / float64(total)
	}
	v1 := chunkSet(readAll(t, g))
	v2 := chunkSet(readAll(t, g))
	adj := overlap(v1, v2)
	if adj < 0.7 {
		t.Fatalf("adjacent redundancy %.2f too low; want > 0.7", adj)
	}
	// Walk to version 10 and compare with version 1.
	last := v2
	for v := 3; v <= 10; v++ {
		last = chunkSet(readAll(t, g))
	}
	far := overlap(v1, last)
	if far >= adj {
		t.Fatalf("redundancy should decay: v1∩v2 = %.2f, v1∩v10 = %.2f", adj, far)
	}
}

// TestDepartedChunksRarelyReturn checks the Figure 3 property: chunks
// absent from version v reappear in later versions only rarely (never,
// with FlapRate 0).
func TestDepartedChunksRarelyReturn(t *testing.T) {
	cfg := smallConfig()
	cfg.Versions = 8
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := chunker.Params{Min: 1024, Avg: 4096, Max: 16384}
	var sets []map[fp.FP]bool
	for v := 1; v <= 8; v++ {
		chunks, err := chunker.Split(chunker.FastCDC, readAll(t, g), params)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[fp.FP]bool)
		for _, c := range chunks {
			set[fp.Of(c)] = true
		}
		sets = append(sets, set)
	}
	// Chunks in v2 but not v3: how many return in v4..v8?
	returned, departed := 0, 0
	for f := range sets[1] {
		if sets[2][f] {
			continue
		}
		departed++
		for v := 3; v < 8; v++ {
			if sets[v][f] {
				returned++
				break
			}
		}
	}
	if departed == 0 {
		t.Skip("no departed chunks at this scale")
	}
	// A small residue of returns is expected even in real datasets
	// (reverted edits); the Figure 3 property is that it is a small
	// minority.
	rate := float64(returned) / float64(departed)
	if rate > 0.10 {
		t.Fatalf("%.1f%% of departed chunks returned; Figure 3 expects a small minority", 100*rate)
	}
}

// TestFlapRateMakesChunksReturn checks the macos-style behaviour.
func TestFlapRateMakesChunksReturn(t *testing.T) {
	cfg := smallConfig()
	cfg.Versions = 6
	cfg.FlapRate = 0.15
	cfg.Files = 32
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := chunker.Params{Min: 1024, Avg: 4096, Max: 16384}
	var sets []map[fp.FP]bool
	for v := 1; v <= 4; v++ {
		chunks, err := chunker.Split(chunker.FastCDC, readAll(t, g), params)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[fp.FP]bool)
		for _, c := range chunks {
			set[fp.Of(c)] = true
		}
		sets = append(sets, set)
	}
	// Chunks present in v2, absent in v3, back in v4.
	flapped := 0
	for f := range sets[1] {
		if !sets[2][f] && sets[3][f] {
			flapped++
		}
	}
	if flapped == 0 {
		t.Fatal("FlapRate 0.15 produced no skip-one-version chunks")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 4)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
		if cfg.Name != name {
			t.Fatalf("preset name %q", cfg.Name)
		}
		// Scaled size should be within 2x of the request.
		if got := cfg.VersionBytes(); got < 2<<20 || got > 16<<20 {
			t.Fatalf("preset %s version size %d outside expected band", name, got)
		}
	}
	if _, err := Preset("nope", 4); err == nil {
		t.Fatal("unknown preset should fail")
	}
	cfg, err := Preset("macos", 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FlapRate == 0 {
		t.Fatal("macos preset must flap")
	}
}

func TestGeneratorExhaustion(t *testing.T) {
	cfg := smallConfig()
	cfg.Versions = 2
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasNext() || g.Version() != 0 {
		t.Fatal("fresh generator state wrong")
	}
	readAll(t, g)
	readAll(t, g)
	if g.HasNext() {
		t.Fatal("generator should be exhausted")
	}
	if _, err := g.NextVersion(); err == nil {
		t.Fatal("NextVersion past the end should fail")
	}
	if g.Version() != 2 {
		t.Fatalf("Version = %d, want 2", g.Version())
	}
}

func TestVersionSizesStayNearConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Versions = 5
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.VersionBytes())
	for v := 1; v <= 5; v++ {
		got := float64(len(readAll(t, g)))
		if got < want/4 || got > want*4 {
			t.Fatalf("version %d size %.0f drifted from nominal %.0f", v, got, want)
		}
	}
}
