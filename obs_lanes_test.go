package hidestore

import (
	"bytes"
	"context"
	"testing"

	"hidestore/internal/obs"
)

// TestStageChunkAccountingWithLanes pins the stage-accounting identity
// under concurrent chunking and sharded index lookups: with multiple
// chunking lanes and a sharded fingerprint cache, each per-version
// stage record (stage.chunking, stage.fingerprint, stage.index_lookup)
// must still account for exactly the chunks the backup reports — lane
// and shard contributions are summed at snapshot, never double-counted
// or dropped.
func TestStageChunkAccountingWithLanes(t *testing.T) {
	versions := testVersions(t, 3)
	var traceBuf bytes.Buffer
	tracer := obs.NewTracer(&traceBuf)
	sys, err := Open(Config{Metrics: obs.NewRegistry(), Tracer: tracer, ChunkLanes: 3, IndexShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var chunks int64
	for _, v := range versions {
		rep, err := sys.Backup(ctx, bytes.NewReader(v))
		if err != nil {
			t.Fatal(err)
		}
		chunks += int64(rep.Chunks)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if chunks == 0 {
		t.Fatal("test degenerate: no chunks backed up")
	}

	sum, err := obs.SummarizeTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]bool{"stage.chunking": false, "stage.fingerprint": false, "stage.index_lookup": false}
	for _, st := range sum.Stages {
		if _, ok := stages[st.Name]; !ok {
			continue
		}
		stages[st.Name] = true
		if st.Chunks != chunks {
			t.Errorf("%s accounts for %d chunks, backups reported %d", st.Name, st.Chunks, chunks)
		}
		if st.Count != len(versions) {
			t.Errorf("%s has %d records, want one per version (%d)", st.Name, st.Count, len(versions))
		}
		if st.Total <= 0 {
			t.Errorf("%s reports no time", st.Name)
		}
	}
	for name, seen := range stages {
		if !seen {
			t.Errorf("trace lacks %s records", name)
		}
	}
}

// TestLanesShardsBitIdenticalBackups pins end-to-end transparency: a
// multi-lane, sharded-index system and a sequential single-shard system
// fed the same versions must report identical chunk/byte accounting and
// restore byte-identical streams.
func TestLanesShardsBitIdenticalBackups(t *testing.T) {
	versions := testVersions(t, 3)
	type result struct {
		chunks   []int
		stored   []uint64
		restored [][]byte
	}
	run := func(lanes, shards int) result {
		sys, err := Open(Config{ChunkLanes: lanes, IndexShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var res result
		for _, v := range versions {
			rep, err := sys.Backup(ctx, bytes.NewReader(v))
			if err != nil {
				t.Fatal(err)
			}
			res.chunks = append(res.chunks, rep.Chunks)
			res.stored = append(res.stored, rep.StoredBytes)
		}
		for i := range versions {
			var out bytes.Buffer
			if _, err := sys.Restore(ctx, i+1, &out); err != nil {
				t.Fatal(err)
			}
			res.restored = append(res.restored, out.Bytes())
		}
		return res
	}
	seq := run(1, 1)
	par := run(4, 8)
	for i := range versions {
		if seq.chunks[i] != par.chunks[i] || seq.stored[i] != par.stored[i] {
			t.Errorf("v%d accounting diverged: sequential %d chunks/%d stored, parallel %d/%d",
				i+1, seq.chunks[i], seq.stored[i], par.chunks[i], par.stored[i])
		}
		if !bytes.Equal(seq.restored[i], par.restored[i]) {
			t.Errorf("v%d restore bytes diverged between sequential and parallel systems", i+1)
		}
		if !bytes.Equal(par.restored[i], versions[i]) {
			t.Errorf("v%d parallel restore does not match the original", i+1)
		}
	}
}

// TestBaselineIndexShardsTransparent pins OpenBaseline's sharding rules
// at the system level: a sharded DDFS front must report the same
// per-version accounting and restore the same bytes as the plain index,
// and a sampling scheme (sparse indexing) must still work with the
// shard knob set — it is forced onto the single-shard exclusive wrapper
// because splitting its segments would change the sampling universe.
func TestBaselineIndexShardsTransparent(t *testing.T) {
	versions := testVersions(t, 3)
	run := func(indexName string, shards, lanes int) (chunks []int, restored [][]byte) {
		sys, err := OpenBaseline(BaselineConfig{
			Index:  indexName,
			Config: Config{IndexShards: shards, ChunkLanes: lanes},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, v := range versions {
			rep, err := sys.Backup(ctx, bytes.NewReader(v))
			if err != nil {
				t.Fatal(err)
			}
			chunks = append(chunks, rep.Chunks)
		}
		for i := range versions {
			var out bytes.Buffer
			if _, err := sys.Restore(ctx, i+1, &out); err != nil {
				t.Fatal(err)
			}
			restored = append(restored, out.Bytes())
		}
		return chunks, restored
	}
	for _, indexName := range []string{"ddfs", "sparse"} {
		plainChunks, plainBytes := run(indexName, 0, 1)
		shardChunks, shardBytes := run(indexName, 8, 2)
		for i := range versions {
			if plainChunks[i] != shardChunks[i] {
				t.Errorf("%s v%d: plain %d chunks, sharded %d", indexName, i+1, plainChunks[i], shardChunks[i])
			}
			if !bytes.Equal(shardBytes[i], versions[i]) || !bytes.Equal(plainBytes[i], shardBytes[i]) {
				t.Errorf("%s v%d: restored bytes diverged", indexName, i+1)
			}
		}
	}
}
