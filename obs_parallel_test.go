package hidestore

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"

	"hidestore/internal/obs"
)

// TestParallelRestoreIdentity pins the parallel restore mode's
// system-level contract: with RestoreWorkers > 1 every version
// restores byte-identically to the serial system, the per-restore
// accounting (ContainerReads, BytesRestored) is unchanged, and the
// observability identity still holds — trace container.fetch spans ==
// Stats reads == the registry counter — because counting stays at the
// single policy-request layer no matter how many workers copy chunks.
func TestParallelRestoreIdentity(t *testing.T) {
	versions := testVersions(t, 4)
	run := func(workers int) ([][]byte, []RestoreReport, uint64, uint64) {
		var traceBuf bytes.Buffer
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(&traceBuf)
		sys, err := Open(Config{Metrics: reg, Tracer: tracer, RestoreWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, v := range versions {
			if _, err := sys.Backup(ctx, bytes.NewReader(v)); err != nil {
				t.Fatal(err)
			}
		}
		var outs [][]byte
		var reps []RestoreReport
		for i := range versions {
			var buf bytes.Buffer
			rep, err := sys.Restore(ctx, i+1, &buf)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, buf.Bytes())
			reps = append(reps, rep)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		sum, err := obs.SummarizeTrace(bytes.NewReader(traceBuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		spans := uint64(sum.SpanCount("container.fetch"))
		counter := uint64(reg.Snapshot().Counters["hidestore_restore_container_reads_total"].Value)
		return outs, reps, spans, counter
	}

	serialOut, serialReps, _, _ := run(0)
	for _, workers := range []int{2, 8} {
		parOut, parReps, spans, counter := run(workers)
		var statsReads uint64
		for i := range versions {
			if !bytes.Equal(parOut[i], serialOut[i]) {
				t.Fatalf("workers=%d: version %d differs from serial restore (%d vs %d bytes)",
					workers, i+1, len(parOut[i]), len(serialOut[i]))
			}
			if !bytes.Equal(parOut[i], versions[i]) {
				t.Fatalf("workers=%d: version %d differs from the backed-up stream", workers, i+1)
			}
			if parReps[i].ContainerReads != serialReps[i].ContainerReads {
				t.Fatalf("workers=%d: version %d ContainerReads = %d, serial = %d",
					workers, i+1, parReps[i].ContainerReads, serialReps[i].ContainerReads)
			}
			statsReads += parReps[i].ContainerReads
		}
		if spans != statsReads || counter != statsReads {
			t.Errorf("workers=%d: accounting identity broken: %d spans, %d Stats reads, %d registry reads",
				workers, spans, statsReads, counter)
		}
	}
}

// TestMetricsScrapeDuringParallelRestore re-runs the scrape-under-load
// race check with the parallel restore mode on: the assembler's worker
// pool, the reorder writer and the widened prefetch pool must all be
// data-race free against concurrent registry scrapes (the race tier
// runs this under -race).
func TestMetricsScrapeDuringParallelRestore(t *testing.T) {
	versions := testVersions(t, 3)
	reg := obs.NewRegistry()
	sys, err := Open(Config{Metrics: reg, RestoreWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(v)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("debug server shutdown: %v", err)
		}
	}()
	url := "http://" + srv.Addr() + "/metrics"

	done := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				if cerr := resp.Body.Close(); cerr != nil || rerr != nil {
					continue
				}
				if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
					t.Errorf("mid-restore scrape malformed: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 5; r++ {
		for i := range versions {
			var buf bytes.Buffer
			if _, err := sys.Restore(ctx, i+1, &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), versions[i]) {
				t.Fatalf("round %d: version %d corrupted under scrape load", r, i+1)
			}
		}
	}
	close(done)
	wg.Wait()

	busy := reg.Snapshot().Gauges["hidestore_restore_assembly_workers_busy"].Value
	if busy != 0 {
		t.Errorf("assembly worker gauge = %d after all restores finished, want 0", busy)
	}
	if spans := reg.Snapshot().Counters["hidestore_restore_assembly_spans_total"].Value; spans == 0 {
		t.Error("parallel restores emitted zero assembly spans")
	}
}

// errAfterReader fails with a read error after n bytes — a backup
// source dying mid-stream.
type errAfterReader struct {
	n   int
	err error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, r.err
	}
	if len(p) > r.n {
		p = p[:r.n]
	}
	for i := range p {
		p[i] = byte(i)
	}
	r.n -= len(p)
	return len(p), nil
}

// TestTraceSpansBalancedOnFailure is the span-leak validator: every
// operation that fails must still End its span (a leaked span emits no
// trace record at all, so the tracer's open-span balance is the only
// reliable detector). Failed backups, failed restores and failed
// parallel restores — on both engines — must all leave the balance at
// zero.
func TestTraceSpansBalancedOnFailure(t *testing.T) {
	versions := testVersions(t, 2)
	srcErr := errors.New("source died")

	check := func(name string, sys *System, tracer *obs.Tracer) {
		ctx := context.Background()
		for _, v := range versions {
			if _, err := sys.Backup(ctx, bytes.NewReader(v)); err != nil {
				t.Fatalf("%s: backup: %v", name, err)
			}
		}
		// Failed backup: the source errors mid-stream.
		if _, err := sys.Backup(ctx, &errAfterReader{n: 4 << 10, err: srcErr}); err == nil {
			t.Fatalf("%s: mid-stream source error did not fail the backup", name)
		}
		// Failed restores: a version that does not exist, serial and
		// after successful ones.
		if _, err := sys.Restore(ctx, 99, io.Discard); err == nil {
			t.Fatalf("%s: restoring a missing version succeeded", name)
		}
		for i := range versions {
			if _, err := sys.Restore(ctx, i+1, io.Discard); err != nil {
				t.Fatalf("%s: restore: %v", name, err)
			}
		}
		if open := tracer.OpenSpans(); open != 0 {
			t.Errorf("%s: %d spans leaked across failed operations", name, open)
		}
	}

	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	sys, err := Open(Config{Tracer: tracer, RestoreWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	check("hidestore", sys, tracer)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	// Every balanced span must actually be in the trace: failed ops
	// emit records too (with an error attribute), they don't vanish.
	sum, err := obs.SummarizeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.SpanCount("restore"), len(versions)+1; got != want {
		t.Errorf("restore span count %d, want %d (failures emit spans too)", got, want)
	}
	if got, want := sum.SpanCount("backup"), len(versions)+1; got != want {
		t.Errorf("backup span count %d, want %d (failures emit spans too)", got, want)
	}

	var bbuf bytes.Buffer
	btracer := obs.NewTracer(&bbuf)
	bsys, err := OpenBaseline(BaselineConfig{Config: Config{Tracer: btracer, RestoreWorkers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	check("baseline", bsys, btracer)
	if err := btracer.Close(); err != nil {
		t.Fatal(err)
	}
}
