package hidestore

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"hidestore/internal/obs"
)

// TestObservabilityAccountingIdentity pins the plane's core invariant:
// over a multi-version backup/restore run with tracing and metrics on,
// the trace's container.fetch span count, the per-run
// restorecache.Stats totals (surfaced as RestoreReport.ContainerReads)
// and the registry's cumulative counter are all equal — the three views
// observe the same reads at the same layer, by construction.
func TestObservabilityAccountingIdentity(t *testing.T) {
	versions := testVersions(t, 4)
	var traceBuf bytes.Buffer
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(&traceBuf)
	sys, err := Open(Config{Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(v)); err != nil {
			t.Fatal(err)
		}
	}
	var statsReads uint64
	for i := range versions {
		rep, err := sys.Restore(ctx, i+1, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		statsReads += rep.ContainerReads
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := obs.SummarizeTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	spanReads := uint64(sum.SpanCount("container.fetch"))
	counterReads := uint64(reg.Snapshot().Counters["hidestore_restore_container_reads_total"].Value)

	if spanReads != statsReads || counterReads != statsReads {
		t.Errorf("accounting identity broken: %d trace spans, %d Stats reads, %d registry reads",
			spanReads, statsReads, counterReads)
	}
	if statsReads == 0 {
		t.Fatal("test degenerate: no container reads observed")
	}
	// The restore spans themselves must be present too.
	if got := sum.SpanCount("restore"); got != len(versions) {
		t.Errorf("restore span count %d, want %d", got, len(versions))
	}
	// And the exposition over the same registry must be well-formed.
	if err := obs.ValidateExposition(strings.NewReader(reg.PrometheusText())); err != nil {
		t.Errorf("exposition malformed after run: %v", err)
	}
}

// TestObservabilityIdentityWithoutPrefetch re-runs the identity with
// read-ahead disabled: prefetch must never change which reads the
// plane observes (§5.3).
func TestObservabilityIdentityWithoutPrefetch(t *testing.T) {
	versions := testVersions(t, 3)
	run := func(prefetch int) (uint64, uint64) {
		reg := obs.NewRegistry()
		sys, err := Open(Config{Metrics: reg, PrefetchDepth: prefetch})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var statsReads uint64
		for _, v := range versions {
			if _, err := sys.Backup(ctx, bytes.NewReader(v)); err != nil {
				t.Fatal(err)
			}
		}
		for i := range versions {
			rep, err := sys.Restore(ctx, i+1, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			statsReads += rep.ContainerReads
		}
		counter := uint64(reg.Snapshot().Counters["hidestore_restore_container_reads_total"].Value)
		return statsReads, counter
	}
	statsOn, counterOn := run(0)    // default read-ahead
	statsOff, counterOff := run(-1) // disabled
	if statsOn != counterOn || statsOff != counterOff {
		t.Errorf("registry disagrees with Stats: on %d/%d, off %d/%d",
			statsOn, counterOn, statsOff, counterOff)
	}
	if statsOn != statsOff {
		t.Errorf("prefetch changed the observed read count: %d with, %d without", statsOn, statsOff)
	}
}

// TestMetricsScrapeDuringRestore hammers restores while concurrently
// polling the live /metrics endpoint — the race tier (go test -race)
// proves the registry's atomics and the engines' shared counters are
// data-race free under scrape load.
func TestMetricsScrapeDuringRestore(t *testing.T) {
	versions := testVersions(t, 3)
	reg := obs.NewRegistry()
	sys, err := Open(Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, v := range versions {
		if _, err := sys.Backup(ctx, bytes.NewReader(v)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("debug server shutdown: %v", err)
		}
	}()
	url := "http://" + srv.Addr() + "/metrics"

	done := make(chan struct{})
	var wg sync.WaitGroup
	const scrapers = 4
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					continue // server teardown race at test end
				}
				body, rerr := io.ReadAll(resp.Body)
				if cerr := resp.Body.Close(); cerr != nil || rerr != nil {
					continue
				}
				if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
					t.Errorf("mid-restore scrape malformed: %v", err)
					return
				}
			}
		}()
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		for i := range versions {
			if _, err := sys.Restore(ctx, i+1, io.Discard); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()

	restores := reg.Snapshot().Counters["hidestore_restore_total"].Value
	if want := int64(rounds * len(versions)); restores != want {
		t.Errorf("restore counter %d, want %d", restores, want)
	}
}
