package hidestore

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// HealthHandler serves the Health snapshot as JSON. A degraded system
// answers 503 so load-balancer and uptime probes fail over without
// parsing the body; the body is identical either way. Mount it on the
// ops server with obs.WithHandler("/healthz", sys.HealthHandler()).
func (s *System) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := s.Health()
		body, err := json.MarshalIndent(h, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.OK() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if _, err := w.Write(append(body, '\n')); err != nil {
			return // client went away; nothing to recover
		}
	})
}

// LayoutHandler serves AnalyzeLayout as JSON: ?version=N picks the
// version (default newest), ?policies=a,b,c narrows the simulated
// cache policies (default all). Analysis replays the full container
// reference stream, so this endpoint costs real I/O — it is mounted
// under /debug/ for a reason.
func (s *System) LayoutHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		version := 0
		if q := r.URL.Query().Get("version"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad version "+strconv.Quote(q), http.StatusBadRequest)
				return
			}
			version = v
		} else {
			vs := s.Versions()
			if len(vs) == 0 {
				http.Error(w, "no versions stored", http.StatusNotFound)
				return
			}
			version = vs[len(vs)-1]
		}
		var policies []string
		if q := r.URL.Query().Get("policies"); q != "" {
			policies = splitPolicies(q)
		}
		rep, err := s.AnalyzeLayout(r.Context(), version, policies)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(append(body, '\n')); err != nil {
			return // client went away; nothing to recover
		}
	})
}

// splitPolicies parses a comma-separated policy list, dropping empty
// elements so trailing commas don't turn into unknown-policy errors.
func splitPolicies(q string) []string {
	var out []string
	for _, p := range strings.Split(q, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
