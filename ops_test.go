package hidestore

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hidestore/internal/backup"
	"hidestore/internal/obs"
)

// opsSystem stores a couple of versions and returns the open System.
func opsSystem(t *testing.T) *System {
	sys, _ := opsSystemDir(t)
	return sys
}

func opsSystemDir(t *testing.T) (*System, string) {
	t.Helper()
	dir := t.TempDir()
	sys, err := Open(Config{Dir: dir, ContainerSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range testVersions(t, 3) {
		if _, err := sys.Backup(context.Background(), bytes.NewReader(v)); err != nil {
			t.Fatal(err)
		}
	}
	return sys, dir
}

func TestHealthHandler(t *testing.T) {
	sys := opsSystem(t)
	rec := httptest.NewRecorder()
	sys.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200; body: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, rec.Body)
	}
	if !h.OK() || h.Status != "ok" {
		t.Errorf("healthy system reported %+v", h)
	}
	if h.Versions != 3 || h.Containers == 0 {
		t.Errorf("health shape wrong: %+v", h)
	}
}

// TestHealthHandlerDegraded rots every container image on disk, runs
// one scrub pass, and proves the damage surfaces through /healthz as a
// 503 with the scrub findings in the body — the probe contract the ops
// server documents.
func TestHealthHandlerDegraded(t *testing.T) {
	sys, dir := opsSystemDir(t)
	if h := sys.Health(); !h.OK() {
		t.Fatalf("fresh system already degraded: %+v", h)
	}

	images, err := filepath.Glob(filepath.Join(dir, "containers", "c_*.ctn"))
	if err != nil || len(images) == 0 {
		t.Fatalf("no container images found (%v): %v", images, err)
	}
	for _, img := range images {
		data, err := os.ReadFile(img)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(img, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pass := make(chan struct{})
	var once sync.Once
	stop, err := sys.StartScrub(ScrubOptions{
		ThrottleMBps: -1, // unthrottled: the pass must finish promptly
		OnStep: func(rep backup.ScrubStepReport, _ error) {
			if rep.PassComplete {
				once.Do(func() { close(pass) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-pass:
	case <-time.After(30 * time.Second):
		t.Fatal("scrub pass did not complete")
	}
	stop()

	rec := httptest.NewRecorder()
	sys.HealthHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded status %d, want 503; body: %s", rec.Code, rec.Body)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.OK() || len(h.Degraded) == 0 {
		t.Errorf("degraded body wrong: %+v", h)
	}
	if h.ScrubTotal == 0 || h.ScrubDone == 0 {
		t.Errorf("scrub progress not reported: %+v", h)
	}
}

func TestLayoutHandler(t *testing.T) {
	sys := opsSystem(t)

	// Default: newest version, all policies.
	rec := httptest.NewRecorder()
	sys.LayoutHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/layout", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d; body: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var rep LayoutReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if rep.Version != 3 {
		t.Errorf("default version %d, want newest (3)", rep.Version)
	}
	if len(rep.Policies) == 0 || rep.UniqueContainers == 0 {
		t.Errorf("report shape wrong: %+v", rep)
	}

	// Explicit version + narrowed policy list.
	rec = httptest.NewRecorder()
	sys.LayoutHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/layout?version=1&policies=faa,", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d; body: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || len(rep.Policies) != 1 || rep.Policies[0].Policy != "faa" {
		t.Errorf("narrowed report wrong: %+v", rep)
	}

	// Errors: malformed version is the client's fault, unknown version
	// is absent data.
	rec = httptest.NewRecorder()
	sys.LayoutHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/layout?version=x", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad version status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	sys.LayoutHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/layout?version=99", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown version status %d, want 404", rec.Code)
	}
}

// TestOpsEndpointsOnDebugServer mounts the handlers the way the CLI
// does and scrapes them over real HTTP, including a graceful shutdown
// with the scrape in flight.
func TestOpsEndpointsOnDebugServer(t *testing.T) {
	sys := opsSystem(t)
	reg := obs.NewRegistry()
	srv, err := obs.StartDebugServer("127.0.0.1:0", reg,
		obs.WithHandler("/healthz", sys.HealthHandler()),
		obs.WithHandler("/debug/layout", sys.LayoutHandler()),
	)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Errorf("close body: %v", cerr)
		}
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/healthz"); ct != "application/json" || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz: ct=%q body=%s", ct, body)
	}
	if body, ct := get("/debug/layout?policies=faa"); ct != "application/json" || !strings.Contains(body, `"cfl"`) {
		t.Errorf("/debug/layout: ct=%q body=%.200s", ct, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with handlers mounted: %v", err)
	}
}
